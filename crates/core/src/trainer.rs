//! Block coordinate descent training loop (Sections IV-B and IV-D).
//!
//! One *sweep* updates every item factor (users fixed) and then every user
//! factor (items fixed), each with `inner_steps` projected-gradient steps
//! (default 1, per the paper). Before each half-sweep, the fixed side's
//! column sums are computed once so every subproblem gets its negative sum
//! in `O(deg · K)` — the Yang–Leskovec sum-trick that gives the algorithm
//! its `O(nnz · K)` per-sweep complexity.

use crate::config::OcularConfig;
use crate::gradient::{negative_sum, LocalProblem, PosWeights};
use crate::linesearch::{armijo_step, fixed_step, LineSearch, StepOutcome};
use crate::loss::user_weights;
use crate::model::FactorModel;
use ocular_linalg::Matrix;
use ocular_sparse::{CsrMatrix, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Telemetry recorded by the trainer.
#[derive(Debug, Clone)]
pub struct TrainingHistory {
    /// Objective `Q` before training (`objective[0]`) and after each sweep.
    pub objective: Vec<f64>,
    /// Wall-clock seconds of each sweep (excludes the objective evaluation,
    /// matching the paper's "running time per iteration" in Figure 7).
    pub sweep_seconds: Vec<f64>,
    /// Whether the relative-decrease tolerance was met before `max_iters`.
    pub converged: bool,
}

impl TrainingHistory {
    /// Number of sweeps executed.
    pub fn iterations(&self) -> usize {
        self.sweep_seconds.len()
    }

    /// Final objective value.
    pub fn final_objective(&self) -> f64 {
        *self
            .objective
            .last()
            .expect("objective recorded at least once")
    }

    /// Mean seconds per sweep.
    pub fn mean_sweep_seconds(&self) -> f64 {
        if self.sweep_seconds.is_empty() {
            0.0
        } else {
            self.sweep_seconds.iter().sum::<f64>() / self.sweep_seconds.len() as f64
        }
    }
}

/// A fitted model plus its training telemetry.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// The fitted factor model.
    pub model: FactorModel,
    /// Objective trace and timings.
    pub history: TrainingHistory,
}

/// Initialises a factor matrix uniformly in `[0, scale)`; bias layouts get
/// their frozen column set to exactly 1 and their bias column scaled down
/// (biases should start near zero so co-clusters explain the data first).
fn init_factors(
    rows: usize,
    cfg: &OcularConfig,
    rng: &mut StdRng,
    frozen_dim: Option<usize>,
    bias_dim: Option<usize>,
) -> Matrix {
    let k_total = cfg.k_total();
    let scale = cfg.effective_init_scale();
    let mut m = Matrix::zeros(rows, k_total);
    for r in 0..rows {
        let row = m.row_mut(r);
        for (c, v) in row.iter_mut().enumerate() {
            *v = if Some(c) == frozen_dim {
                1.0
            } else if Some(c) == bias_dim {
                rng.gen::<f64>() * scale * 0.01
            } else {
                rng.gen::<f64>() * scale
            };
        }
    }
    m
}

/// Updates one side (all items, or all users) in place. Returns the number
/// of accepted steps.
#[allow(clippy::too_many_arguments)]
fn sweep_side<'w>(
    own: &mut Matrix,
    other: &Matrix,
    adjacency: &CsrMatrix, // rows = own entities, cols = other entities
    weights_for_positives: &dyn Fn(usize) -> PosWeights<'w>,
    cfg: &OcularConfig,
    fixed_dim: Option<usize>,
    ls: &LineSearch,
    scratch: &mut SweepScratch,
) -> usize {
    other.column_sums_into(&mut scratch.other_sum);
    let mut accepted = 0usize;
    for e in 0..own.rows() {
        let positives = adjacency.row(e);
        negative_sum(other, &scratch.other_sum, positives, &mut scratch.negsum);
        let problem = LocalProblem {
            positives,
            other,
            weights: weights_for_positives(e),
            negsum: &scratch.negsum,
            lambda: cfg.lambda,
            fixed_dim,
        };
        let row = own.row_mut(e);
        let mut q_local = problem.objective(row);
        for _ in 0..cfg.inner_steps {
            problem.gradient(row, &mut scratch.grad);
            if cfg.line_search {
                match armijo_step(
                    row,
                    &scratch.grad,
                    q_local,
                    &problem,
                    ls,
                    &mut scratch.candidate,
                ) {
                    StepOutcome::Accepted { q_new, .. } => {
                        q_local = q_new;
                        accepted += 1;
                    }
                    StepOutcome::Rejected | StepOutcome::Stationary => break,
                }
            } else {
                q_local = fixed_step(
                    row,
                    &scratch.grad,
                    cfg.fixed_step,
                    &problem,
                    &mut scratch.candidate,
                );
                accepted += 1;
            }
        }
    }
    accepted
}

/// Reusable per-sweep buffers (one allocation for the whole training run,
/// including the fixed side's column sums — no per-sweep churn).
struct SweepScratch {
    negsum: Vec<f64>,
    grad: Vec<f64>,
    candidate: Vec<f64>,
    other_sum: Vec<f64>,
}

impl SweepScratch {
    fn new(k_total: usize) -> Self {
        SweepScratch {
            negsum: vec![0.0; k_total],
            grad: vec![0.0; k_total],
            candidate: vec![0.0; k_total],
            other_sum: Vec::with_capacity(k_total),
        }
    }
}

/// The bias-extension column layout: `(user_frozen, user_bias, item_frozen,
/// item_bias)` dimensions. Dims `[0..k)` are co-clusters; dim `k` is the
/// user bias (frozen to 1 on items); dim `k+1` the item bias (frozen to 1
/// on users).
pub fn bias_layout(
    cfg: &OcularConfig,
) -> (Option<usize>, Option<usize>, Option<usize>, Option<usize>) {
    if cfg.bias {
        (Some(cfg.k + 1), Some(cfg.k), Some(cfg.k), Some(cfg.k + 1))
    } else {
        (None, None, None, None)
    }
}

/// Seeded factor initialisation, shared by this sequential trainer and the
/// parallel trainer in `ocular-parallel` — both draw from the same RNG
/// stream, so they start from bitwise-identical factors.
///
/// With [`crate::config::InitStrategy::NeighborhoodSeeded`] (the default),
/// the random background is scaled down and each co-cluster dimension is
/// seeded on a random user's purchase neighbourhood, which breaks the
/// symmetry that traps uniform-random starts in poor local optima when `K`
/// is large.
pub fn initial_factors(r: &CsrMatrix, cfg: &OcularConfig) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (user_frozen, user_bias, item_frozen, item_bias) = bias_layout(cfg);
    match cfg.init {
        crate::config::InitStrategy::Random => {
            let user_factors = init_factors(r.n_rows(), cfg, &mut rng, user_frozen, user_bias);
            let item_factors = init_factors(r.n_cols(), cfg, &mut rng, item_frozen, item_bias);
            (user_factors, item_factors)
        }
        crate::config::InitStrategy::NeighborhoodSeeded => {
            // faint random background so unclaimed entities can still move
            let background = OcularConfig {
                init_scale: 0.1 * cfg.effective_init_scale(),
                ..cfg.clone()
            };
            let mut user_factors =
                init_factors(r.n_rows(), &background, &mut rng, user_frozen, user_bias);
            let mut item_factors =
                init_factors(r.n_cols(), &background, &mut rng, item_frozen, item_bias);
            if r.n_rows() > 0 {
                for c in 0..cfg.k {
                    // prefer a seed user that actually has purchases
                    let mut seed_user = rng.gen_range(0..r.n_rows());
                    for _ in 0..16 {
                        if r.row_nnz(seed_user) > 0 {
                            break;
                        }
                        seed_user = rng.gen_range(0..r.n_rows());
                    }
                    user_factors.row_mut(seed_user)[c] = 1.0;
                    for &i in r.row(seed_user) {
                        item_factors.row_mut(i as usize)[c] = 1.0;
                    }
                }
            }
            (user_factors, item_factors)
        }
    }
}

/// Fits an OCuLaR (or R-OCuLaR) model to the one-class interaction store
/// `data`. The item half-sweep reads the dataset's build-once CSC dual
/// view ([`Dataset::item_view`]) — nothing is re-transposed per fit — and
/// all per-sweep buffers are allocated once up front.
///
/// # Panics
/// Panics if `cfg` fails [`OcularConfig::validate`]. Use [`try_fit`] for a
/// fallible variant.
pub fn fit(data: &Dataset, cfg: &OcularConfig) -> TrainResult {
    if let Err(msg) = cfg.validate() {
        panic!("invalid OcularConfig: {msg}");
    }
    let r: &CsrMatrix = data.matrix();
    let (user_frozen, _, item_frozen, _) = bias_layout(cfg);
    let (mut user_factors, mut item_factors) = initial_factors(r, cfg);

    let rt = data.item_view();
    let weights = user_weights(r, cfg.weighting);
    let ls = LineSearch {
        sigma: cfg.sigma,
        beta: cfg.beta,
        max_backtracks: cfg.max_backtracks,
    };
    let mut scratch = SweepScratch::new(cfg.k_total());

    let eval =
        |uf: &Matrix, itf: &Matrix| crate::loss::objective_parts(r, uf, itf, cfg.lambda, &weights);
    let mut q = eval(&user_factors, &item_factors);
    let mut history = TrainingHistory {
        objective: vec![q],
        sweep_seconds: Vec::new(),
        converged: false,
    };

    for _ in 0..cfg.max_iters {
        let t0 = Instant::now();
        // item half-sweep: positives of item i are the users rt.row(i);
        // each positive's weight is that user's w_u
        sweep_side(
            &mut item_factors,
            &user_factors,
            rt,
            &|_| PosWeights::PerEntity(&weights),
            cfg,
            item_frozen,
            &ls,
            &mut scratch,
        );
        // user half-sweep: positives of user u are r.row(u), all weighted w_u
        let w_ref = &weights;
        sweep_side(
            &mut user_factors,
            &item_factors,
            r,
            &|u| PosWeights::Uniform(w_ref[u]),
            cfg,
            user_frozen,
            &ls,
            &mut scratch,
        );
        history.sweep_seconds.push(t0.elapsed().as_secs_f64());

        let q_new = eval(&user_factors, &item_factors);
        history.objective.push(q_new);
        let decrease = q - q_new;
        q = q_new;
        if cfg.line_search && decrease <= cfg.tol * q.abs().max(1.0) {
            history.converged = true;
            break;
        }
    }

    TrainResult {
        model: FactorModel::new(user_factors, item_factors, cfg.bias),
        history,
    }
}

/// Fallible [`fit`]: returns
/// [`OcularError::InvalidConfig`](ocular_api::OcularError) instead of
/// panicking when `cfg` fails [`OcularConfig::validate`].
pub fn try_fit(data: &Dataset, cfg: &OcularConfig) -> Result<TrainResult, ocular_api::OcularError> {
    cfg.validate()
        .map_err(ocular_api::OcularError::InvalidConfig)?;
    Ok(fit(data, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Weighting;

    fn two_blocks() -> Dataset {
        Dataset::from_matrix(two_blocks_matrix())
    }

    fn two_blocks_matrix() -> CsrMatrix {
        CsrMatrix::from_pairs(
            6,
            6,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 3),
                (3, 4),
                (3, 5),
                (4, 3),
                (4, 4),
                (4, 5),
                (5, 3),
                (5, 4),
                (5, 5),
            ],
        )
        .unwrap()
    }

    fn quick_cfg() -> OcularConfig {
        OcularConfig {
            k: 2,
            lambda: 0.05,
            max_iters: 60,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn objective_is_monotone_nonincreasing() {
        let r = two_blocks();
        let result = fit(&r, &quick_cfg());
        let obj = &result.history.objective;
        assert!(obj.len() >= 2);
        for w in obj.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "objective must not increase: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn factors_stay_nonnegative() {
        let r = two_blocks();
        let result = fit(&r, &quick_cfg());
        assert!(result
            .model
            .user_factors
            .as_slice()
            .iter()
            .all(|&v| v >= 0.0));
        assert!(result
            .model
            .item_factors
            .as_slice()
            .iter()
            .all(|&v| v >= 0.0));
    }

    #[test]
    fn block_structure_recovered() {
        let r = two_blocks();
        let result = fit(&r, &quick_cfg());
        let m = &result.model;
        // within-block probabilities must dominate cross-block ones
        let within = m.prob(0, 1).min(m.prob(4, 5));
        let cross = m.prob(0, 4).max(m.prob(4, 0));
        assert!(
            within > 3.0 * cross + 0.05,
            "within {within} should dominate cross {cross}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let r = two_blocks();
        let a = fit(&r, &quick_cfg());
        let b = fit(&r, &quick_cfg());
        assert_eq!(a.model, b.model);
        let c = fit(
            &r,
            &OcularConfig {
                seed: 99,
                ..quick_cfg()
            },
        );
        assert_ne!(a.model, c.model);
    }

    #[test]
    fn converges_on_small_problem() {
        let r = two_blocks();
        let result = fit(
            &r,
            &OcularConfig {
                max_iters: 200,
                ..quick_cfg()
            },
        );
        assert!(
            result.history.converged,
            "should converge within 200 sweeps"
        );
        assert!(result.history.iterations() < 200);
    }

    #[test]
    fn relative_weighting_trains() {
        let r = two_blocks();
        let cfg = OcularConfig {
            weighting: Weighting::Relative,
            ..quick_cfg()
        };
        let result = fit(&r, &cfg);
        for w in result.history.objective.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        let m = &result.model;
        assert!(m.prob(0, 1) > m.prob(0, 4));
    }

    #[test]
    fn bias_variant_trains_and_freezes_columns() {
        let r = two_blocks();
        let cfg = OcularConfig {
            bias: true,
            ..quick_cfg()
        };
        let result = fit(&r, &cfg);
        let m = &result.model;
        assert!(m.has_bias());
        assert_eq!(m.n_clusters(), 2);
        // frozen columns: users' k+1, items' k must be exactly 1
        for u in 0..6 {
            assert_eq!(m.user_factors.row(u)[3], 1.0);
        }
        for i in 0..6 {
            assert_eq!(m.item_factors.row(i)[2], 1.0);
        }
        for w in result.history.objective.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn multiple_inner_steps_reach_lower_objective_per_sweep() {
        let r = two_blocks();
        let one = fit(
            &r,
            &OcularConfig {
                inner_steps: 1,
                max_iters: 3,
                ..quick_cfg()
            },
        );
        let five = fit(
            &r,
            &OcularConfig {
                inner_steps: 5,
                max_iters: 3,
                ..quick_cfg()
            },
        );
        assert!(
            five.history.final_objective() <= one.history.final_objective() + 1e-9,
            "more inner steps should fit at least as well per sweep"
        );
    }

    #[test]
    fn empty_matrix_trains_to_zero_factors() {
        let r = Dataset::from_matrix(CsrMatrix::empty(4, 3));
        let result = fit(
            &r,
            &OcularConfig {
                max_iters: 50,
                tol: 1e-9,
                ..quick_cfg()
            },
        );
        // with no positives the optimum is all-zero factors: items collapse
        // immediately (their negative sum dominates); users decay
        // geometrically under the regulariser until tolerance
        let item_max = result
            .model
            .item_factors
            .as_slice()
            .iter()
            .fold(0.0f64, |m, &v| m.max(v));
        assert_eq!(item_max, 0.0, "item factors must collapse exactly");
        let user_max = result
            .model
            .user_factors
            .as_slice()
            .iter()
            .fold(0.0f64, |m, &v| m.max(v));
        assert!(
            user_max < 0.05,
            "user factors should decay towards 0, max {user_max}"
        );
    }

    #[test]
    fn history_timings_recorded() {
        let r = two_blocks();
        let result = fit(&r, &quick_cfg());
        assert_eq!(
            result.history.sweep_seconds.len(),
            result.history.iterations()
        );
        assert!(result.history.mean_sweep_seconds() >= 0.0);
        assert_eq!(
            result.history.objective.len(),
            result.history.iterations() + 1
        );
    }

    #[test]
    #[should_panic(expected = "invalid OcularConfig")]
    fn invalid_config_panics() {
        fit(
            &two_blocks(),
            &OcularConfig {
                k: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn fixed_step_mode_trains() {
        let r = two_blocks();
        let cfg = OcularConfig {
            line_search: false,
            fixed_step: 0.02,
            max_iters: 80,
            ..quick_cfg()
        };
        let result = fit(&r, &cfg);
        let m = &result.model;
        assert!(
            m.prob(0, 1) > m.prob(0, 4),
            "fixed-step training should still fit"
        );
    }
}
