//! Fold-in of new users — serving recommendations without retraining.
//!
//! A deployed B2B system (Section VIII) meets clients that were not in the
//! training matrix: a new account, or an anonymous basket mid-session. The
//! factor model supports *fold-in*: with item factors frozen, a new user's
//! affiliation vector is the solution of exactly one user-subproblem
//! (Eq. 5) — convex, so projected gradient iterations converge to its
//! unique minimiser for λ > 0. This costs `O(basket · K)` per step, a few
//! microseconds, against a full retrain.

use crate::config::OcularConfig;
use crate::gradient::{negative_sum, LocalProblem, PosWeights};
use crate::linesearch::{armijo_step, LineSearch, StepOutcome};
use crate::model::FactorModel;
use crate::recommend::Recommendation;

/// Result of folding in a new user.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldIn {
    /// The inferred affiliation vector (length `k_total`).
    pub factors: Vec<f64>,
    /// Local objective value at the solution.
    pub objective: f64,
    /// Projected-gradient steps taken before the Armijo search stalled or
    /// `max_steps` was reached.
    pub steps: usize,
}

/// Reusable working memory for [`fold_in_user_with`] — the sorted basket,
/// the negative sum, the iterate, and the two solver temporaries.
///
/// A serving tier folds users in on every cold request; allocating these
/// five vectors per request is pure tail latency. Keep one scratch per
/// worker thread (the buffers are cleared and resized on each call, so
/// results are identical to the allocate-fresh path).
#[derive(Debug, Clone, Default)]
pub struct FoldInScratch {
    positives: Vec<u32>,
    negsum: Vec<f64>,
    own: Vec<f64>,
    grad: Vec<f64>,
    step: Vec<f64>,
}

impl FoldInScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Infers the affiliation vector of a user with the given `basket` of item
/// indices, against a fitted model's (frozen) item factors.
///
/// `weight` is the positive-example weight (1.0 for plain OCuLaR; a
/// R-OCuLaR-style weight `(n_items − |basket|)/|basket|` may be passed).
/// `max_steps` bounds the inner solve; the subproblem is strongly convex
/// for `lambda > 0`, so 50–100 steps reach machine-precision stationarity.
///
/// # Panics
/// Panics if any basket item is out of range, or on duplicate items.
pub fn fold_in_user(
    model: &FactorModel,
    basket: &[usize],
    cfg: &OcularConfig,
    weight: f64,
    max_steps: usize,
) -> FoldIn {
    let item_sum = model.item_factors.column_sums();
    fold_in_user_with(
        model,
        basket,
        cfg,
        weight,
        max_steps,
        &item_sum,
        &mut FoldInScratch::new(),
    )
}

/// [`fold_in_user`] against caller-owned working memory: `item_sum` is the
/// model's `item_factors.column_sums()` (model-constant — compute it once
/// per loaded model, not once per request) and `scratch` holds the solver
/// buffers, reusable across calls. Returns exactly what [`fold_in_user`]
/// returns for the same inputs.
///
/// # Panics
/// In addition to [`fold_in_user`]'s basket checks, panics if
/// `item_sum.len() != model.k_total()`.
pub fn fold_in_user_with(
    model: &FactorModel,
    basket: &[usize],
    cfg: &OcularConfig,
    weight: f64,
    max_steps: usize,
    item_sum: &[f64],
    scratch: &mut FoldInScratch,
) -> FoldIn {
    let k = model.k_total();
    assert_eq!(
        item_sum.len(),
        k,
        "item_sum must be the model's column_sums()"
    );
    scratch.positives.clear();
    scratch.positives.extend(basket.iter().map(|&i| {
        assert!(i < model.n_items(), "basket item {i} out of range");
        ocular_sparse::col_index(i)
    }));
    scratch.positives.sort_unstable();
    let dups = scratch.positives.windows(2).any(|w| w[0] == w[1]);
    assert!(!dups, "basket contains duplicate items");

    scratch.negsum.clear();
    scratch.negsum.resize(k, 0.0);
    negative_sum(
        &model.item_factors,
        item_sum,
        &scratch.positives,
        &mut scratch.negsum,
    );
    // bias layout: the user-side frozen dimension is k_clusters + 1
    let fixed_dim = model.has_bias().then(|| model.n_clusters() + 1);
    let problem = LocalProblem {
        positives: &scratch.positives,
        other: &model.item_factors,
        weights: PosWeights::Uniform(weight),
        negsum: &scratch.negsum,
        lambda: cfg.lambda,
        fixed_dim,
    };
    let ls = LineSearch {
        sigma: cfg.sigma,
        beta: cfg.beta,
        max_backtracks: cfg.max_backtracks,
    };

    // warm start: mean of the basket items' factors (a reasonable prior —
    // the user is "like" their items), bias column forced to 1
    let own = &mut scratch.own;
    own.clear();
    own.resize(k, 0.0);
    if !scratch.positives.is_empty() {
        for &i in &scratch.positives {
            for (o, &v) in own.iter_mut().zip(model.item_factors.row(i as usize)) {
                *o += v;
            }
        }
        let inv = 1.0 / scratch.positives.len() as f64;
        for o in own.iter_mut() {
            *o *= inv;
        }
    }
    if let Some(d) = fixed_dim {
        own[d] = 1.0;
    }

    scratch.grad.clear();
    scratch.grad.resize(k, 0.0);
    scratch.step.clear();
    scratch.step.resize(k, 0.0);
    let mut q = problem.objective(own);
    let mut steps = 0;
    for _ in 0..max_steps {
        problem.gradient(own, &mut scratch.grad);
        match armijo_step(own, &scratch.grad, q, &problem, &ls, &mut scratch.step) {
            StepOutcome::Accepted { q_new, .. } => {
                q = q_new;
                steps += 1;
            }
            StepOutcome::Rejected | StepOutcome::Stationary => break,
        }
    }
    FoldIn {
        factors: own.clone(),
        objective: q,
        steps,
    }
}

/// Recommends top-M items for an *unseen* user described only by a basket,
/// excluding the basket itself. The serving path for new clients.
///
/// Selection runs through the bounded-heap kernel
/// [`top_m_excluding`](crate::topm::top_m_excluding), matching the warm-user
/// path's ties convention exactly.
pub fn recommend_for_basket(
    model: &FactorModel,
    basket: &[usize],
    cfg: &OcularConfig,
    m: usize,
) -> (Vec<Recommendation>, FoldIn) {
    let fold = fold_in_user(model, basket, cfg, 1.0, 100);
    let mut scores = vec![0.0; model.n_items()];
    for (item, s) in scores.iter_mut().enumerate() {
        let p = ocular_linalg::ops::dot(&fold.factors, model.item_factors.row(item));
        *s = crate::model::prob_from_affinity(p);
    }
    let mut exclude: Vec<u32> = basket
        .iter()
        .map(|&i| ocular_sparse::col_index(i))
        .collect();
    exclude.sort_unstable();
    let recs = crate::topm::top_m_excluding(&scores, &exclude, m);
    (recs, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fit, OcularConfig};
    use ocular_sparse::CsrMatrix;

    fn trained() -> (FactorModel, CsrMatrix, OcularConfig) {
        // two 4×4 blocks
        let mut pairs = Vec::new();
        for b in 0..2 {
            for u in 0..4 {
                for i in 0..4 {
                    pairs.push((b * 4 + u, b * 4 + i));
                }
            }
        }
        let r = CsrMatrix::from_pairs(8, 8, &pairs).unwrap();
        let cfg = OcularConfig {
            k: 2,
            lambda: 0.1,
            max_iters: 80,
            seed: 3,
            ..Default::default()
        };
        (fit(&r.clone().into(), &cfg).model, r, cfg)
    }

    #[test]
    fn folded_user_matches_block_members() {
        let (model, _r, cfg) = trained();
        // a new user who bought items 0 and 1 (block A)
        let fold = fold_in_user(&model, &[0, 1], &cfg, 1.0, 100);
        assert!(fold.steps > 0, "solver should move from the warm start");
        // their affiliation must resemble an existing block-A user's:
        // high probability on block-A items, low on block-B
        let p_in: f64 = (0..4)
            .map(|i| {
                crate::model::prob_from_affinity(ocular_linalg::ops::dot(
                    &fold.factors,
                    model.item_factors.row(i),
                ))
            })
            .sum::<f64>()
            / 4.0;
        let p_out: f64 = (4..8)
            .map(|i| {
                crate::model::prob_from_affinity(ocular_linalg::ops::dot(
                    &fold.factors,
                    model.item_factors.row(i),
                ))
            })
            .sum::<f64>()
            / 4.0;
        assert!(
            p_in > 3.0 * p_out + 0.1,
            "in-block {p_in} vs out-block {p_out}"
        );
    }

    #[test]
    fn basket_recommendations_complete_the_block() {
        let (model, _r, cfg) = trained();
        let (recs, _) = recommend_for_basket(&model, &[4, 5], &cfg, 2);
        // 6 and 7 are symmetric in the block, so their probabilities tie up
        // to float noise and their relative order is not meaningful
        let mut items: Vec<usize> = recs.iter().map(|r| r.item).collect();
        items.sort_unstable();
        assert_eq!(items, vec![6, 7], "block B should be completed: {recs:?}");
    }

    #[test]
    fn empty_basket_yields_near_zero_factors() {
        let (model, _r, cfg) = trained();
        let fold = fold_in_user(&model, &[], &cfg, 1.0, 100);
        // no positives: the objective pushes the vector to 0
        assert!(fold.factors.iter().all(|&v| v >= 0.0));
        assert!(
            fold.factors.iter().sum::<f64>() < 0.1,
            "factors should collapse: {:?}",
            fold.factors
        );
    }

    #[test]
    fn fold_in_nonnegative_and_deterministic() {
        let (model, _r, cfg) = trained();
        let a = fold_in_user(&model, &[0, 2], &cfg, 1.0, 100);
        let b = fold_in_user(&model, &[0, 2], &cfg, 1.0, 100);
        assert_eq!(a, b);
        assert!(a.factors.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn fold_in_close_to_training_solution() {
        // folding in an EXISTING user's basket should land near that user's
        // trained probabilities
        let (model, r, cfg) = trained();
        let u = 1;
        let basket: Vec<usize> = r.row(u).iter().map(|&i| i as usize).collect();
        let fold = fold_in_user(&model, &basket, &cfg, 1.0, 200);
        for i in 0..8 {
            let p_fold = crate::model::prob_from_affinity(ocular_linalg::ops::dot(
                &fold.factors,
                model.item_factors.row(i),
            ));
            let p_train = model.prob(u, i);
            assert!(
                (p_fold - p_train).abs() < 0.15,
                "item {i}: fold {p_fold:.3} vs trained {p_train:.3}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basket_bounds_checked() {
        let (model, _r, cfg) = trained();
        fold_in_user(&model, &[99], &cfg, 1.0, 10);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_basket_rejected() {
        let (model, _r, cfg) = trained();
        fold_in_user(&model, &[1, 1], &cfg, 1.0, 10);
    }

    #[test]
    fn bias_model_fold_in_keeps_frozen_column() {
        let mut pairs = Vec::new();
        for u in 0..4 {
            for i in 0..4 {
                pairs.push((u, i));
            }
        }
        let r = CsrMatrix::from_pairs(4, 4, &pairs).unwrap();
        let cfg = OcularConfig {
            k: 2,
            bias: true,
            lambda: 0.1,
            max_iters: 30,
            seed: 1,
            ..Default::default()
        };
        let model = fit(&r.clone().into(), &cfg).model;
        let fold = fold_in_user(&model, &[0, 1], &cfg, 1.0, 50);
        assert_eq!(fold.factors[3], 1.0, "frozen user column must stay 1");
    }
}
