//! Model diagnostics for practitioners.
//!
//! The paper selects `K` so that *"the size of the co-clusters is neither
//! too big nor too small, and … each user or item does not belong to too
//! many co-clusters"* (Section VII-C). These diagnostics surface exactly
//! those quantities from a fitted model, plus dead-dimension detection —
//! the operational signal that `K` was set too high.

use crate::model::FactorModel;
use ocular_linalg::ops;
use ocular_sparse::CsrMatrix;

/// Per-dimension health of a fitted model.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionReport {
    /// Factor dimension index.
    pub dim: usize,
    /// `Σ_u [f_u]_c` — total user mass on the dimension.
    pub user_mass: f64,
    /// `Σ_i [f_i]_c` — total item mass.
    pub item_mass: f64,
    /// Largest user strength.
    pub max_user: f64,
    /// Largest item strength.
    pub max_item: f64,
    /// Whether the dimension can explain any pair with probability ≥ 50%
    /// (`max_user · max_item ≥ ln 2`). Dead dimensions waste capacity.
    pub alive: bool,
}

/// Aggregate diagnostics of a fitted model against its training matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDiagnostics {
    /// Per-dimension reports (cluster dimensions only; bias columns are
    /// excluded).
    pub dimensions: Vec<DimensionReport>,
    /// Number of alive dimensions.
    pub alive_dimensions: usize,
    /// Mean training-positive probability `P[r_ui = 1]` under the model —
    /// calibration of the fit (≈ in-cluster density for a well-fitted
    /// model).
    pub mean_positive_probability: f64,
    /// Mean probability over a deterministic sample of unknown pairs —
    /// should sit far below `mean_positive_probability`.
    pub mean_unknown_probability: f64,
    /// Fraction of users whose factor row is numerically zero (the model
    /// cannot recommend for them beyond ties).
    pub cold_user_fraction: f64,
}

impl ModelDiagnostics {
    /// Separation between positives and unknowns (higher = better fit);
    /// `mean_pos / max(mean_unknown, ε)`.
    pub fn separation(&self) -> f64 {
        self.mean_positive_probability / self.mean_unknown_probability.max(1e-12)
    }
}

/// Computes diagnostics. O(nnz·K + (n_u + n_i)·K).
pub fn diagnose(model: &FactorModel, r: &CsrMatrix) -> ModelDiagnostics {
    let ln2 = std::f64::consts::LN_2;
    let mut dimensions = Vec::with_capacity(model.n_clusters());
    for c in 0..model.n_clusters() {
        let (mut user_mass, mut max_user) = (0.0f64, 0.0f64);
        for u in 0..model.n_users() {
            let v = model.user_factors.row(u)[c];
            user_mass += v;
            max_user = max_user.max(v);
        }
        let (mut item_mass, mut max_item) = (0.0f64, 0.0f64);
        for i in 0..model.n_items() {
            let v = model.item_factors.row(i)[c];
            item_mass += v;
            max_item = max_item.max(v);
        }
        dimensions.push(DimensionReport {
            dim: c,
            user_mass,
            item_mass,
            max_user,
            max_item,
            alive: max_user * max_item >= ln2,
        });
    }
    let alive_dimensions = dimensions.iter().filter(|d| d.alive).count();

    let mut pos_sum = 0.0;
    for (u, i) in r.iter_nnz() {
        pos_sum += model.prob(u, i);
    }
    let mean_positive_probability = if r.nnz() > 0 {
        pos_sum / r.nnz() as f64
    } else {
        0.0
    };

    // deterministic unknown sample: stride over the grid, skipping positives
    let mut unk_sum = 0.0;
    let mut unk_n = 0usize;
    let stride = (r.n_rows() * r.n_cols() / 10_000).max(1);
    let mut cell = 0usize;
    while cell < r.n_rows() * r.n_cols() {
        let (u, i) = (cell / r.n_cols(), cell % r.n_cols());
        if !r.contains(u, i) {
            unk_sum += model.prob(u, i);
            unk_n += 1;
        }
        cell += stride;
    }
    let mean_unknown_probability = if unk_n > 0 {
        unk_sum / unk_n as f64
    } else {
        0.0
    };

    let cold = (0..model.n_users())
        .filter(|&u| ops::norm_sq(model.user_factors.row(u)) < 1e-16)
        .count();
    ModelDiagnostics {
        dimensions,
        alive_dimensions,
        mean_positive_probability,
        mean_unknown_probability,
        cold_user_fraction: cold as f64 / model.n_users().max(1) as f64,
    }
}

impl std::fmt::Display for ModelDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}/{} dimensions alive; P(pos) = {:.3}, P(unknown) = {:.4} (separation {:.1}×); {:.1}% cold users",
            self.alive_dimensions,
            self.dimensions.len(),
            self.mean_positive_probability,
            self.mean_unknown_probability,
            self.separation(),
            self.cold_user_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fit, OcularConfig};

    fn blocks() -> CsrMatrix {
        let mut pairs = Vec::new();
        for b in 0..2 {
            for u in 0..5 {
                for i in 0..5 {
                    pairs.push((b * 5 + u, b * 5 + i));
                }
            }
        }
        CsrMatrix::from_pairs(10, 10, &pairs).unwrap()
    }

    #[test]
    fn well_fitted_model_separates() {
        let r = blocks();
        let model = fit(
            &r.clone().into(),
            &OcularConfig {
                k: 2,
                lambda: 0.1,
                max_iters: 60,
                seed: 1,
                ..Default::default()
            },
        )
        .model;
        let d = diagnose(&model, &r);
        assert_eq!(d.alive_dimensions, 2, "both blocks should be claimed");
        assert!(d.mean_positive_probability > 0.7);
        assert!(d.mean_unknown_probability < 0.2);
        assert!(d.separation() > 4.0, "separation {}", d.separation());
        assert_eq!(d.cold_user_fraction, 0.0);
    }

    #[test]
    fn excess_k_produces_dead_dimensions() {
        let r = blocks();
        // seed chosen so both planted blocks survive the λ=0.5 pruning
        let model = fit(
            &r.clone().into(),
            &OcularConfig {
                k: 8,
                lambda: 0.5,
                max_iters: 60,
                seed: 0,
                ..Default::default()
            },
        )
        .model;
        let d = diagnose(&model, &r);
        assert!(
            d.alive_dimensions < 8,
            "with 2 blocks and K=8 some dimensions must die: {d}"
        );
        assert!(d.alive_dimensions >= 2);
    }

    #[test]
    fn zero_model_all_dead_and_cold() {
        let model = FactorModel::new(
            ocular_linalg::Matrix::zeros(3, 2),
            ocular_linalg::Matrix::zeros(4, 2),
            false,
        );
        let r = CsrMatrix::empty(3, 4);
        let d = diagnose(&model, &r);
        assert_eq!(d.alive_dimensions, 0);
        assert_eq!(d.cold_user_fraction, 1.0);
        assert_eq!(d.mean_positive_probability, 0.0);
    }

    #[test]
    fn display_renders() {
        let r = blocks();
        let model = fit(
            &r.clone().into(),
            &OcularConfig {
                k: 2,
                lambda: 0.1,
                max_iters: 30,
                seed: 1,
                ..Default::default()
            },
        )
        .model;
        let text = diagnose(&model, &r).to_string();
        assert!(text.contains("dimensions alive"));
        assert!(text.contains("separation"));
    }
}
