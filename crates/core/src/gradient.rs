//! Per-factor subproblems: local objective and gradient with the sum-trick.
//!
//! Minimising `Q` with one side fixed decomposes per factor row (Section
//! IV-D). For an item `i` (the user case is symmetric) the local objective
//! is
//!
//! ```text
//! Q(f_i) = Σ_{u: r_ui=1} w_u · pair_loss(⟨f_u,f_i⟩) + ⟨f_i, Σ_{u: r_ui=0} f_u⟩ + λ‖f_i‖²
//! ```
//!
//! and its gradient
//!
//! ```text
//! ∇Q(f_i) = Σ_{u: r_ui=0} f_u + 2λf_i − Σ_{u: r_ui=1} f_u · w_u/expm1(⟨f_u,f_i⟩)
//! ```
//!
//! The negative sums are never formed directly: the trainer precomputes
//! `S = Σ_u f_u` once per half-sweep and each subproblem uses
//! `Σ_{r=0} f_u = S − Σ_{r=1} f_u`, so one factor update costs
//! `O(deg · K)` and a full sweep `O(nnz · K)` — the paper's complexity claim.

use crate::loss::{pair_loss, positive_coefficient};
use ocular_linalg::{ops, Matrix};

/// Weights attached to the positive examples of a subproblem.
#[derive(Debug, Clone, Copy)]
pub enum PosWeights<'a> {
    /// Every positive weighs the same (user subproblems: `w_u`; plain
    /// OCuLaR: 1).
    Uniform(f64),
    /// Per-counterpart weights indexed by entity id (item subproblems under
    /// R-OCuLaR: `w_u` varies with the purchasing user).
    PerEntity(&'a [f64]),
}

impl PosWeights<'_> {
    /// Weight of the positive example whose counterpart entity is `e`.
    #[inline]
    pub fn get(&self, e: usize) -> f64 {
        match self {
            PosWeights::Uniform(w) => *w,
            PosWeights::PerEntity(ws) => ws[e],
        }
    }
}

/// One factor-row subproblem, bundling everything the line search needs.
pub struct LocalProblem<'a> {
    /// Counterpart entities with `r = 1` (users of an item, or items of a
    /// user).
    pub positives: &'a [u32],
    /// Factor matrix of the *fixed* side.
    pub other: &'a Matrix,
    /// Weights of the positive examples.
    pub weights: PosWeights<'a>,
    /// Precomputed `Σ_{r=0} f_other` (sum-trick output).
    pub negsum: &'a [f64],
    /// Regularization strength λ.
    pub lambda: f64,
    /// Bias-extension support: a dimension whose value is frozen (the
    /// constant-1 column). Its gradient entry is zeroed so a projected step
    /// never moves it.
    pub fixed_dim: Option<usize>,
}

impl LocalProblem<'_> {
    /// Local objective `Q(f)` for a candidate row `own`.
    pub fn objective(&self, own: &[f64]) -> f64 {
        let mut q = ops::dot(own, self.negsum) + self.lambda * ops::norm_sq(own);
        for &e in self.positives {
            let p = ops::dot(own, self.other.row(e as usize));
            q += self.weights.get(e as usize) * pair_loss(p);
        }
        q
    }

    /// Writes `∇Q(own)` into `grad`.
    pub fn gradient(&self, own: &[f64], grad: &mut [f64]) {
        debug_assert_eq!(own.len(), grad.len());
        grad.copy_from_slice(self.negsum);
        ops::axpy(2.0 * self.lambda, own, grad);
        for &e in self.positives {
            let row = self.other.row(e as usize);
            let p = ops::dot(own, row);
            let coef = positive_coefficient(p, self.weights.get(e as usize));
            ops::axpy(-coef, row, grad);
        }
        if let Some(d) = self.fixed_dim {
            grad[d] = 0.0;
        }
    }
}

/// Computes `negsum = other_sum − Σ_{e ∈ positives} other.row(e)` into `out`
/// — the sum-trick (Section IV-D, credited to Yang & Leskovec).
pub fn negative_sum(other: &Matrix, other_sum: &[f64], positives: &[u32], out: &mut [f64]) {
    out.copy_from_slice(other_sum);
    for &e in positives {
        for (o, &v) in out.iter_mut().zip(other.row(e as usize)) {
            *o -= v;
        }
    }
}

/// Naive `O(n · K)` negative sum for validation. Membership is compared in
/// the `usize` domain so entity counts past `u32::MAX` cannot wrap.
pub fn negative_sum_naive(other: &Matrix, positives: &[u32], out: &mut [f64]) {
    out.iter_mut().for_each(|v| *v = 0.0);
    for e in 0..other.rows() {
        if positives
            .binary_search_by(|&p| (p as usize).cmp(&e))
            .is_err()
        {
            for (o, &v) in out.iter_mut().zip(other.row(e)) {
                *o += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn other() -> Matrix {
        Matrix::from_rows(&[&[0.5, 0.1], &[0.2, 0.9], &[0.7, 0.3], &[0.05, 0.4]])
    }

    #[test]
    fn negative_sum_matches_naive() {
        let o = other();
        let sum = o.column_sums();
        let positives: Vec<u32> = vec![1, 3];
        let mut fast = vec![0.0; 2];
        let mut naive = vec![0.0; 2];
        negative_sum(&o, &sum, &positives, &mut fast);
        negative_sum_naive(&o, &positives, &mut naive);
        for (a, b) in fast.iter().zip(&naive) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let o = other();
        let sum = o.column_sums();
        let positives: Vec<u32> = vec![0, 2];
        let weights = vec![1.0, 0.0, 2.5, 0.0];
        let mut negsum = vec![0.0; 2];
        negative_sum(&o, &sum, &positives, &mut negsum);
        let problem = LocalProblem {
            positives: &positives,
            other: &o,
            weights: PosWeights::PerEntity(&weights),
            negsum: &negsum,
            lambda: 0.3,
            fixed_dim: None,
        };
        let own = vec![0.4, 0.6];
        let mut grad = vec![0.0; 2];
        problem.gradient(&own, &mut grad);
        let h = 1e-6;
        for d in 0..2 {
            let mut plus = own.clone();
            plus[d] += h;
            let mut minus = own.clone();
            minus[d] -= h;
            let numeric = (problem.objective(&plus) - problem.objective(&minus)) / (2.0 * h);
            assert!(
                (numeric - grad[d]).abs() < 1e-5,
                "dim {d}: numeric {numeric} vs analytic {}",
                grad[d]
            );
        }
    }

    #[test]
    fn gradient_with_uniform_weights_matches_per_entity() {
        let o = other();
        let sum = o.column_sums();
        let positives: Vec<u32> = vec![1, 2];
        let uniform_weights = vec![3.0; 4];
        let mut negsum = vec![0.0; 2];
        negative_sum(&o, &sum, &positives, &mut negsum);
        let own = vec![0.3, 0.2];
        let mut g1 = vec![0.0; 2];
        let mut g2 = vec![0.0; 2];
        LocalProblem {
            positives: &positives,
            other: &o,
            weights: PosWeights::Uniform(3.0),
            negsum: &negsum,
            lambda: 0.1,
            fixed_dim: None,
        }
        .gradient(&own, &mut g1);
        LocalProblem {
            positives: &positives,
            other: &o,
            weights: PosWeights::PerEntity(&uniform_weights),
            negsum: &negsum,
            lambda: 0.1,
            fixed_dim: None,
        }
        .gradient(&own, &mut g2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn fixed_dim_gradient_is_zero() {
        let o = other();
        let sum = o.column_sums();
        let positives: Vec<u32> = vec![0];
        let mut negsum = vec![0.0; 2];
        negative_sum(&o, &sum, &positives, &mut negsum);
        let problem = LocalProblem {
            positives: &positives,
            other: &o,
            weights: PosWeights::Uniform(1.0),
            negsum: &negsum,
            lambda: 0.5,
            fixed_dim: Some(1),
        };
        let mut grad = vec![0.0; 2];
        problem.gradient(&[0.2, 1.0], &mut grad);
        assert_eq!(grad[1], 0.0);
        assert_ne!(grad[0], 0.0);
    }

    #[test]
    fn gradient_at_zero_row_is_finite() {
        // degree-0 entity: gradient must be the negsum + 0 (regulariser)
        let o = other();
        let sum = o.column_sums();
        let positives: Vec<u32> = vec![];
        let mut negsum = vec![0.0; 2];
        negative_sum(&o, &sum, &positives, &mut negsum);
        let problem = LocalProblem {
            positives: &positives,
            other: &o,
            weights: PosWeights::Uniform(1.0),
            negsum: &negsum,
            lambda: 1.0,
            fixed_dim: None,
        };
        let mut grad = vec![0.0; 2];
        problem.gradient(&[0.0, 0.0], &mut grad);
        assert!(grad.iter().all(|v| v.is_finite()));
        // for an empty row the gradient equals negsum (= full sum here)
        for (g, s) in grad.iter().zip(&sum) {
            assert!((g - s).abs() < 1e-12);
        }
    }

    #[test]
    fn positive_example_pulls_affinity_up() {
        // with a single positive and no negatives/regularisation the
        // gradient must point towards *larger* affinity (negative gradient
        // along the counterpart's direction)
        let o = Matrix::from_rows(&[&[1.0, 0.0]]);
        let positives: Vec<u32> = vec![0];
        let negsum = vec![0.0; 2];
        let problem = LocalProblem {
            positives: &positives,
            other: &o,
            weights: PosWeights::Uniform(1.0),
            negsum: &negsum,
            lambda: 0.0,
            fixed_dim: None,
        };
        let mut grad = vec![0.0; 2];
        problem.gradient(&[0.5, 0.5], &mut grad);
        assert!(grad[0] < 0.0, "gradient must push dim 0 up");
        assert_eq!(grad[1], 0.0, "orthogonal dim untouched");
    }
}
