//! Armijo backtracking line search along the projection arc (Section IV-D).
//!
//! The factor update is `f^{k+1} = (f^k − α_k ∇Q(f^k))₊` with
//! `α_k = β^{t_k}`, `t_k` the smallest integer such that
//!
//! ```text
//! Q(f^{k+1}) − Q(f^k) ≤ σ ⟨∇Q(f^k), f^{k+1} − f^k⟩
//! ```
//!
//! (the Armijo rule along the projection arc, Bertsekas §2.3). Because the
//! right-hand side is non-positive for a projected gradient step, every
//! accepted update decreases the local objective, which makes the overall
//! block-coordinate sweep monotone.

use crate::gradient::LocalProblem;
use ocular_linalg::ops;

/// Line-search constants (paper: user-set `σ, β ∈ (0,1)`).
#[derive(Debug, Clone, Copy)]
pub struct LineSearch {
    /// Sufficient-decrease constant σ.
    pub sigma: f64,
    /// Backtracking factor β.
    pub beta: f64,
    /// Maximum trials before giving up on this factor for the sweep.
    pub max_backtracks: usize,
}

/// Outcome of one factor update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// The row was updated; contains the new local objective and the
    /// accepted step size.
    Accepted {
        /// Local objective after the step.
        q_new: f64,
        /// The accepted `α = β^t`.
        alpha: f64,
    },
    /// No candidate satisfied the Armijo test within `max_backtracks`; the
    /// row is unchanged.
    Rejected,
    /// The gradient step didn't move the row (already stationary on the
    /// active constraints).
    Stationary,
}

/// Performs one projected gradient step with backtracking on `own`.
///
/// `grad` must hold `∇Q(own)`; `candidate` is caller-provided scratch of the
/// same length. On acceptance `own` is overwritten with the new row.
pub fn armijo_step(
    own: &mut [f64],
    grad: &[f64],
    q0: f64,
    problem: &LocalProblem<'_>,
    params: &LineSearch,
    candidate: &mut [f64],
) -> StepOutcome {
    debug_assert_eq!(own.len(), grad.len());
    debug_assert_eq!(own.len(), candidate.len());
    let mut alpha = 1.0;
    for _ in 0..params.max_backtracks {
        ops::projected_step(own, grad, alpha, candidate);
        let predicted = ops::dot_diff(grad, candidate, own);
        if predicted == 0.0 {
            // projection absorbed the whole step: stationary w.r.t. the
            // active set (e.g. zero row with non-negative gradient)
            if candidate == own {
                return StepOutcome::Stationary;
            }
        }
        let q1 = problem.objective(candidate);
        if q1 - q0 <= params.sigma * predicted {
            own.copy_from_slice(candidate);
            return StepOutcome::Accepted { q_new: q1, alpha };
        }
        alpha *= params.beta;
    }
    StepOutcome::Rejected
}

/// Fixed-step variant (ablation: `line_search = false`). Always applies
/// `(own − α ∇Q)₊`; returns the new local objective, which may be *worse* —
/// that is the point of the ablation.
pub fn fixed_step(
    own: &mut [f64],
    grad: &[f64],
    alpha: f64,
    problem: &LocalProblem<'_>,
    candidate: &mut [f64],
) -> f64 {
    ops::projected_step(own, grad, alpha, candidate);
    own.copy_from_slice(candidate);
    problem.objective(own)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::{negative_sum, PosWeights};
    use ocular_linalg::Matrix;

    fn params() -> LineSearch {
        LineSearch {
            sigma: 0.1,
            beta: 0.5,
            max_backtracks: 30,
        }
    }

    /// A small concrete subproblem: one positive counterpart, light
    /// regularisation.
    fn setup() -> (Matrix, Vec<u32>, Vec<f64>) {
        let other = Matrix::from_rows(&[&[1.0, 0.2], &[0.1, 0.1]]);
        let positives = vec![0u32];
        let sum = other.column_sums();
        let mut negsum = vec![0.0; 2];
        negative_sum(&other, &sum, &positives, &mut negsum);
        (other, positives, negsum)
    }

    #[test]
    fn accepted_step_decreases_objective() {
        let (other, positives, negsum) = setup();
        let problem = LocalProblem {
            positives: &positives,
            other: &other,
            weights: PosWeights::Uniform(1.0),
            negsum: &negsum,
            lambda: 0.1,
            fixed_dim: None,
        };
        let mut own = vec![0.5, 0.5];
        let q0 = problem.objective(&own);
        let mut grad = vec![0.0; 2];
        problem.gradient(&own, &mut grad);
        let mut scratch = vec![0.0; 2];
        match armijo_step(&mut own, &grad, q0, &problem, &params(), &mut scratch) {
            StepOutcome::Accepted { q_new, alpha } => {
                assert!(q_new < q0, "objective must decrease: {q_new} vs {q0}");
                assert!(alpha > 0.0 && alpha <= 1.0);
            }
            other => panic!("expected acceptance, got {other:?}"),
        }
        assert!(
            own.iter().all(|&v| v >= 0.0),
            "projection keeps non-negativity"
        );
    }

    #[test]
    fn repeated_steps_converge_to_stationary_point() {
        let (other, positives, negsum) = setup();
        let problem = LocalProblem {
            positives: &positives,
            other: &other,
            weights: PosWeights::Uniform(1.0),
            negsum: &negsum,
            lambda: 0.1,
            fixed_dim: None,
        };
        let mut own = vec![0.5, 0.5];
        let mut grad = vec![0.0; 2];
        let mut scratch = vec![0.0; 2];
        let mut q = problem.objective(&own);
        for _ in 0..200 {
            problem.gradient(&own, &mut grad);
            match armijo_step(&mut own, &grad, q, &problem, &params(), &mut scratch) {
                StepOutcome::Accepted { q_new, .. } => q = q_new,
                _ => break,
            }
        }
        // at a stationary point the projected gradient must (approximately)
        // vanish: grad ≥ 0 where own = 0, grad ≈ 0 where own > 0
        problem.gradient(&own, &mut grad);
        for (o, g) in own.iter().zip(&grad) {
            if *o > 1e-9 {
                assert!(g.abs() < 1e-4, "free coordinate gradient {g} should vanish");
            } else {
                assert!(*g > -1e-4, "active coordinate gradient {g} should be ≥ 0");
            }
        }
    }

    #[test]
    fn stationary_zero_row_detected() {
        // no positives: objective = ⟨own, negsum⟩ + λ‖own‖², negsum ≥ 0,
        // so own = 0 is optimal and the step must not move
        let other = Matrix::from_rows(&[&[0.4, 0.6]]);
        let positives: Vec<u32> = vec![];
        let sum = other.column_sums();
        let mut negsum = vec![0.0; 2];
        negative_sum(&other, &sum, &positives, &mut negsum);
        let problem = LocalProblem {
            positives: &positives,
            other: &other,
            weights: PosWeights::Uniform(1.0),
            negsum: &negsum,
            lambda: 0.1,
            fixed_dim: None,
        };
        let mut own = vec![0.0, 0.0];
        let q0 = problem.objective(&own);
        let mut grad = vec![0.0; 2];
        problem.gradient(&own, &mut grad);
        let mut scratch = vec![0.0; 2];
        let outcome = armijo_step(&mut own, &grad, q0, &problem, &params(), &mut scratch);
        assert_eq!(outcome, StepOutcome::Stationary);
        assert_eq!(own, vec![0.0, 0.0]);
    }

    #[test]
    fn fixed_dim_never_moves() {
        let (other, positives, negsum) = setup();
        let problem = LocalProblem {
            positives: &positives,
            other: &other,
            weights: PosWeights::Uniform(1.0),
            negsum: &negsum,
            lambda: 0.1,
            fixed_dim: Some(1),
        };
        let mut own = vec![0.5, 1.0];
        let q0 = problem.objective(&own);
        let mut grad = vec![0.0; 2];
        problem.gradient(&own, &mut grad);
        let mut scratch = vec![0.0; 2];
        armijo_step(&mut own, &grad, q0, &problem, &params(), &mut scratch);
        assert_eq!(own[1], 1.0, "frozen dimension must stay at 1.0");
    }

    #[test]
    fn fixed_step_applies_unconditionally() {
        let (other, positives, negsum) = setup();
        let problem = LocalProblem {
            positives: &positives,
            other: &other,
            weights: PosWeights::Uniform(1.0),
            negsum: &negsum,
            lambda: 0.1,
            fixed_dim: None,
        };
        let mut own = vec![0.5, 0.5];
        let mut grad = vec![0.0; 2];
        problem.gradient(&own, &mut grad);
        let before = own.clone();
        let mut scratch = vec![0.0; 2];
        fixed_step(&mut own, &grad, 0.05, &problem, &mut scratch);
        assert_ne!(own, before, "fixed step must move the row");
        assert!(own.iter().all(|&v| v >= 0.0));
    }
}
