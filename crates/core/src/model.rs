//! The factor model: non-negative co-cluster affiliation vectors.

use ocular_linalg::{ops, Matrix};
use std::io::{BufRead, Write};

/// Smallest affinity used inside logs/denominators. With non-negative
/// factors the loss `−log(1 − e^{−p})` is singular at `p = 0`; clamping to
/// `P_MIN` (the guard BIGCLAM uses as well) keeps gradients finite without
/// measurably distorting the objective.
pub const P_MIN: f64 = 1e-10;

/// `P[r_ui = 1] = 1 − e^{−p}` computed as `−expm1(−p)` for accuracy at
/// small affinities.
#[inline]
pub fn prob_from_affinity(p: f64) -> f64 {
    -(-p).exp_m1()
}

/// A fitted OCuLaR model.
///
/// Rows of [`FactorModel::user_factors`] / [`FactorModel::item_factors`] are
/// the affiliation vectors `f_u`, `f_i`. When the bias extension is enabled
/// the last two columns are `(b_u, 1)` for users and `(1, b_i)` for items,
/// so that `⟨f'_u, f'_i⟩ = ⟨f_u, f_i⟩ + b_u + b_i`; co-cluster semantics
/// apply only to the first [`FactorModel::n_clusters`] columns.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorModel {
    /// `n_users × k_total` affiliation matrix.
    pub user_factors: Matrix,
    /// `n_items × k_total` affiliation matrix.
    pub item_factors: Matrix,
    /// Number of co-cluster dimensions (excludes bias columns).
    n_clusters: usize,
    /// Whether the two trailing bias columns are present.
    has_bias: bool,
}

impl FactorModel {
    /// Wraps factor matrices into a model.
    ///
    /// # Panics
    /// Panics if the factor matrices disagree on `k`, or if `bias` is set
    /// but there is no room for the two bias columns. Use
    /// [`FactorModel::try_new`] for a fallible variant.
    pub fn new(user_factors: Matrix, item_factors: Matrix, has_bias: bool) -> Self {
        Self::try_new(user_factors, item_factors, has_bias).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FactorModel::new`]: returns
    /// [`OcularError::InvalidConfig`](ocular_api::OcularError) instead of
    /// panicking when the factor matrices disagree on `k` or the bias
    /// layout has no room for its two columns.
    pub fn try_new(
        user_factors: Matrix,
        item_factors: Matrix,
        has_bias: bool,
    ) -> Result<Self, ocular_api::OcularError> {
        if user_factors.cols() != item_factors.cols() {
            return Err(ocular_api::OcularError::InvalidConfig(format!(
                "user and item factors must share k ({} vs {})",
                user_factors.cols(),
                item_factors.cols()
            )));
        }
        let k_total = user_factors.cols();
        let n_clusters = if has_bias {
            if k_total < 3 {
                return Err(ocular_api::OcularError::InvalidConfig(
                    "bias model needs k ≥ 1 plus two bias columns".into(),
                ));
            }
            k_total - 2
        } else {
            k_total
        };
        Ok(FactorModel {
            user_factors,
            item_factors,
            n_clusters,
            has_bias,
        })
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.user_factors.rows()
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.item_factors.rows()
    }

    /// Total factor dimensionality (co-clusters + bias columns).
    pub fn k_total(&self) -> usize {
        self.user_factors.cols()
    }

    /// Number of co-cluster dimensions `K`.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Whether the bias extension is active.
    pub fn has_bias(&self) -> bool {
        self.has_bias
    }

    /// Affinity `⟨f_u, f_i⟩` (including bias terms when present).
    #[inline]
    pub fn affinity(&self, u: usize, i: usize) -> f64 {
        ops::dot(self.user_factors.row(u), self.item_factors.row(i))
    }

    /// `P[r_ui = 1] = 1 − e^{−⟨f_u, f_i⟩}` (Eq. 1).
    #[inline]
    pub fn prob(&self, u: usize, i: usize) -> f64 {
        prob_from_affinity(self.affinity(u, i))
    }

    /// Per-cluster contribution `[f_u]_c · [f_i]_c` for `c` in the cluster
    /// dimensions — the quantities the explanation engine decomposes.
    pub fn cluster_contributions(&self, u: usize, i: usize) -> Vec<f64> {
        let fu = self.user_factors.row(u);
        let fi = self.item_factors.row(i);
        (0..self.n_clusters).map(|c| fu[c] * fi[c]).collect()
    }

    /// Fills `buf` (resized to `n_items`) with `P[r_ui = 1]` for every item.
    pub fn score_user(&self, u: usize, buf: &mut Vec<f64>) {
        buf.clear();
        buf.resize(self.n_items(), 0.0);
        let fu = self.user_factors.row(u);
        for i in 0..self.n_items() {
            buf[i] = prob_from_affinity(ops::dot(fu, self.item_factors.row(i)));
        }
    }

    /// User bias `b_u` (0 when the extension is off).
    pub fn user_bias(&self, u: usize) -> f64 {
        if self.has_bias {
            self.user_factors.row(u)[self.n_clusters]
        } else {
            0.0
        }
    }

    /// Item bias `b_i` (0 when the extension is off).
    pub fn item_bias(&self, i: usize) -> f64 {
        if self.has_bias {
            self.item_factors.row(i)[self.n_clusters + 1]
        } else {
            0.0
        }
    }

    /// Serialises the model to a writer in a line-oriented text format
    /// (`ocular-model v1`). Factors are written in full `f64` precision.
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(w);
        writeln!(
            w,
            "ocular-model v1 {} {} {} {}",
            self.n_users(),
            self.n_items(),
            self.k_total(),
            u8::from(self.has_bias)
        )?;
        for side in [&self.user_factors, &self.item_factors] {
            ocular_api::textio::write_matrix(&mut w, side)?;
        }
        w.flush()
    }

    /// Loads a model produced by [`FactorModel::save`].
    pub fn load<R: BufRead>(r: &mut R) -> std::io::Result<FactorModel> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut header = String::new();
        r.read_line(&mut header)?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 6 || parts[0] != "ocular-model" || parts[1] != "v1" {
            return Err(bad("bad header"));
        }
        let n_users: usize = parts[2].parse().map_err(|_| bad("bad n_users"))?;
        let n_items: usize = parts[3].parse().map_err(|_| bad("bad n_items"))?;
        let k: usize = parts[4].parse().map_err(|_| bad("bad k"))?;
        let has_bias = parts[5] == "1";
        let mut read_matrix = |rows: usize| -> std::io::Result<Matrix> {
            let mut data = Vec::with_capacity(rows * k);
            let mut line = String::new();
            for _ in 0..rows {
                line.clear();
                if r.read_line(&mut line)? == 0 {
                    return Err(bad("truncated model file"));
                }
                for field in line.split_whitespace() {
                    data.push(field.parse::<f64>().map_err(|_| bad("bad factor value"))?);
                }
            }
            if data.len() != rows * k {
                return Err(bad("wrong number of factor values"));
            }
            Ok(Matrix::from_vec(rows, k, data))
        };
        let user_factors = read_matrix(n_users)?;
        let item_factors = read_matrix(n_items)?;
        Ok(FactorModel::new(user_factors, item_factors, has_bias))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> FactorModel {
        let u = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 0.5]]);
        let i = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        FactorModel::new(u, i, false)
    }

    #[test]
    fn probability_formula() {
        let m = toy();
        // affinity(0,0) = 2.0
        assert!((m.affinity(0, 0) - 2.0).abs() < 1e-12);
        assert!((m.prob(0, 0) - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
        // orthogonal pair → probability 0
        assert_eq!(m.prob(0, 1), 0.0);
    }

    #[test]
    fn prob_is_bounded() {
        let m = toy();
        for u in 0..2 {
            for i in 0..3 {
                let p = m.prob(u, i);
                assert!((0.0..1.0).contains(&p) || p == 0.0);
            }
        }
    }

    #[test]
    fn prob_from_affinity_small_values_accurate() {
        // for tiny p, 1 - e^{-p} ≈ p
        let p = 1e-14;
        let v = prob_from_affinity(p);
        assert!((v - p).abs() < 1e-20, "expm1 path must stay accurate");
    }

    #[test]
    fn score_user_matches_pointwise() {
        let m = toy();
        let mut buf = Vec::new();
        m.score_user(1, &mut buf);
        assert_eq!(buf.len(), 3);
        for i in 0..3 {
            assert!((buf[i] - m.prob(1, i)).abs() < 1e-15);
        }
    }

    #[test]
    fn cluster_contributions_sum_to_affinity() {
        let m = toy();
        let contr = m.cluster_contributions(1, 2);
        let total: f64 = contr.iter().sum();
        assert!((total - m.affinity(1, 2)).abs() < 1e-12);
    }

    #[test]
    fn bias_columns_accounted() {
        // k=1 cluster + bias: user row [f, b_u, 1], item row [f, 1, b_i]
        let u = Matrix::from_rows(&[&[2.0, 0.3, 1.0]]);
        let i = Matrix::from_rows(&[&[1.0, 1.0, 0.2]]);
        let m = FactorModel::new(u, i, true);
        assert_eq!(m.n_clusters(), 1);
        assert!((m.affinity(0, 0) - (2.0 + 0.3 + 0.2)).abs() < 1e-12);
        assert!((m.user_bias(0) - 0.3).abs() < 1e-12);
        assert!((m.item_bias(0) - 0.2).abs() < 1e-12);
        assert_eq!(m.cluster_contributions(0, 0), vec![2.0]);
    }

    #[test]
    fn save_load_roundtrip() {
        let m = toy();
        let mut buf: Vec<u8> = Vec::new();
        m.save(&mut buf).unwrap();
        let loaded = FactorModel::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded, m);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(FactorModel::load(&mut "not a model".as_bytes()).is_err());
        assert!(FactorModel::load(&mut "ocular-model v1 2 2 2 0\n1 2\n".as_bytes()).is_err());
    }

    #[test]
    #[should_panic(expected = "share k")]
    fn mismatched_k_panics() {
        FactorModel::new(Matrix::zeros(2, 3), Matrix::zeros(2, 4), false);
    }
}
