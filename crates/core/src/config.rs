//! Training configuration.

/// How the factor matrices are initialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Uniform random in `[0, init_scale)`. Simple, but with many
    /// co-clusters several dimensions race for the same strong block and
    /// weak blocks are never claimed (a poor local optimum).
    Random,
    /// Neighbourhood seeding in the spirit of BIGCLAM's locally-minimal-
    /// neighbourhood initialisation: each dimension `c` is seeded on a
    /// random user's purchase neighbourhood — the user and their items get
    /// affiliation 1 in dimension `c`, everything else starts near zero.
    /// Breaks the symmetry with actual co-purchase structure; the default.
    NeighborhoodSeeded,
}

/// Which likelihood the trainer optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weighting {
    /// Plain OCuLaR (Section IV): every positive example weighs 1.
    Absolute,
    /// R-OCuLaR (Section V): positive examples of user `u` are weighted by
    /// `w_u = |{i : r_ui = 0}| / |{i : r_ui = 1}|`, which falls out of
    /// treating positives as *relative* preferences à la BPR. Users with
    /// few positives receive large weights.
    Relative,
}

/// Hyper-parameters and solver knobs for [`crate::fit`].
///
/// The paper's two *model* hyper-parameters are `k` and `lambda`, selected
/// by cross-validated grid search (Section IV-B, Figures 6 & 9). The solver
/// knobs default to the paper's choices — in particular `inner_steps = 1`
/// ("performing only one gradient descent step significantly speeds up the
/// algorithm") and Armijo line search along the projection arc.
#[derive(Debug, Clone)]
pub struct OcularConfig {
    /// Number of co-clusters `K`.
    pub k: usize,
    /// `ℓ2` regularization strength `λ ≥ 0` (Eq. 4). The paper shows both
    /// `λ = 0` and very large `λ` hurt accuracy (Figure 6); regularization
    /// is also the key difference from BIGCLAM (Section II).
    pub lambda: f64,
    /// Maximum number of full (items + users) sweeps.
    pub max_iters: usize,
    /// Convergence tolerance: stop when the relative decrease of `Q` over
    /// one sweep falls below this ("convergence is declared if Q stops
    /// decreasing").
    pub tol: f64,
    /// Armijo sufficient-decrease constant `σ ∈ (0, 1)`.
    pub sigma: f64,
    /// Backtracking factor `β ∈ (0, 1)`; candidate steps are `β^t`.
    pub beta: f64,
    /// Maximum backtracking trials per factor update; if the Armijo test
    /// never passes the factor is left unchanged this sweep.
    pub max_backtracks: usize,
    /// Projected-gradient steps per subproblem. The paper uses 1; larger
    /// values approximate solving each subproblem exactly (the ablation of
    /// Section IV-B's discussion).
    pub inner_steps: usize,
    /// Whether to run the Armijo line search. `false` uses the fixed step
    /// `fixed_step` (ablation; may diverge for poorly scaled problems).
    pub line_search: bool,
    /// Step size used when `line_search` is off.
    pub fixed_step: f64,
    /// Factors are initialised uniformly in `[0, init_scale)`. The default
    /// (set when this is 0) is `sqrt(1/k)`, giving initial affinities around
    /// `k · init_scale²/4 ≈ 0.25`.
    pub init_scale: f64,
    /// RNG seed for factor initialisation.
    pub seed: u64,
    /// Factor initialisation strategy.
    pub init: InitStrategy,
    /// Absolute (OCuLaR) or relative (R-OCuLaR) weighting.
    pub weighting: Weighting,
    /// Enables the bias extension `P = 1 − e^{−⟨f_u,f_i⟩ − b_u − b_i}`
    /// (Section IV-A; the paper found it did not help and left it off).
    pub bias: bool,
}

impl Default for OcularConfig {
    fn default() -> Self {
        OcularConfig {
            k: 16,
            lambda: 1.0,
            max_iters: 100,
            tol: 1e-4,
            sigma: 0.1,
            beta: 0.5,
            max_backtracks: 20,
            inner_steps: 1,
            line_search: true,
            fixed_step: 0.05,
            init_scale: 0.0,
            seed: 0,
            init: InitStrategy::NeighborhoodSeeded,
            weighting: Weighting::Absolute,
            bias: false,
        }
    }
}

impl OcularConfig {
    /// The effective initialisation scale (`sqrt(1/k)` when unset).
    pub fn effective_init_scale(&self) -> f64 {
        if self.init_scale > 0.0 {
            self.init_scale
        } else {
            (1.0 / self.k.max(1) as f64).sqrt()
        }
    }

    /// Total factor dimensionality including bias columns.
    pub fn k_total(&self) -> usize {
        if self.bias {
            self.k + 2
        } else {
            self.k
        }
    }

    /// Validates parameter ranges, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be positive".into());
        }
        if self.lambda < 0.0 {
            return Err("lambda must be non-negative".into());
        }
        if !(0.0..1.0).contains(&self.sigma) || self.sigma == 0.0 {
            return Err("sigma must lie in (0, 1)".into());
        }
        if !(0.0..1.0).contains(&self.beta) || self.beta == 0.0 {
            return Err("beta must lie in (0, 1)".into());
        }
        if self.inner_steps == 0 {
            return Err("inner_steps must be positive".into());
        }
        if !self.line_search && self.fixed_step <= 0.0 {
            return Err("fixed_step must be positive when line search is off".into());
        }
        Ok(())
    }

    /// Convenience: the R-OCuLaR configuration with everything else equal.
    pub fn relative(mut self) -> Self {
        self.weighting = Weighting::Relative;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(OcularConfig::default().validate().is_ok());
    }

    #[test]
    fn default_init_scale_tracks_k() {
        let cfg = OcularConfig {
            k: 4,
            ..Default::default()
        };
        assert!((cfg.effective_init_scale() - 0.5).abs() < 1e-12);
        let explicit = OcularConfig {
            k: 4,
            init_scale: 0.1,
            ..Default::default()
        };
        assert_eq!(explicit.effective_init_scale(), 0.1);
    }

    #[test]
    fn k_total_includes_bias() {
        let cfg = OcularConfig {
            k: 5,
            bias: true,
            ..Default::default()
        };
        assert_eq!(cfg.k_total(), 7);
        let plain = OcularConfig {
            k: 5,
            ..Default::default()
        };
        assert_eq!(plain.k_total(), 5);
    }

    #[test]
    fn validation_catches_bad_ranges() {
        assert!(OcularConfig {
            k: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OcularConfig {
            lambda: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OcularConfig {
            sigma: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OcularConfig {
            sigma: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OcularConfig {
            beta: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OcularConfig {
            inner_steps: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OcularConfig {
            line_search: false,
            fixed_step: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn relative_builder() {
        let cfg = OcularConfig::default().relative();
        assert_eq!(cfg.weighting, Weighting::Relative);
    }
}
