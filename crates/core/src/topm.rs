//! Bounded top-M selection — the serving-path selection kernel.
//!
//! [`recommend_top_m`](crate::recommend_top_m) originally scored every item
//! and fully sorted the candidate vector: `O(n log n)` per request. A
//! top-M list only needs the `M` largest scores, so selection now runs
//! through the workspace-shared bounded-heap kernel
//! [`ocular_linalg::topk`] — `O(n log M)` with a tiny constant — which also
//! backs `ocular_eval::ranking`, so the ties convention (probability
//! descending, ties by ascending item index) cannot diverge between what
//! is evaluated and what is served. This module wraps that kernel in the
//! [`Recommendation`]-typed API the recommendation and serving paths use.

use crate::recommend::Recommendation;
use ocular_linalg::topk::{top_k_excluding, TopK};

/// A bounded selector keeping the `M` best `(item, probability)` pairs seen
/// so far — [`ocular_linalg::topk::TopK`] with [`Recommendation`] output.
#[derive(Debug, Clone)]
pub struct TopM(TopK);

impl TopM {
    /// An empty selector that will retain at most `m` recommendations.
    pub fn new(m: usize) -> Self {
        TopM(TopK::new(m))
    }

    /// Number of pairs currently retained (`≤ m`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Offers `(item, score)`; keeps it only if it ranks among the best `m`
    /// seen so far.
    ///
    /// # Panics
    /// Panics if `score` is NaN.
    #[inline]
    pub fn push(&mut self, item: usize, score: f64) {
        self.0.push(item, score);
    }

    /// Consumes the selector, returning the retained recommendations sorted
    /// by probability descending, ties by ascending item — identical to
    /// sorting all offered pairs with the same comparator and truncating to
    /// `m`.
    pub fn into_sorted(self) -> Vec<Recommendation> {
        self.0
            .into_sorted()
            .into_iter()
            .map(|(probability, item)| Recommendation { item, probability })
            .collect()
    }
}

/// Selects the top-`m` of `scores`, skipping the sorted exclusion list
/// `exclude` (ascending `u32` item indices, the CSR row convention).
///
/// The exclusion walk compares in the `usize` domain, so no item index is
/// ever narrowed to `u32` — catalogs larger than `u32::MAX` cannot
/// silently alias into the exclusion filter (they are rejected at
/// `CsrMatrix` construction instead).
pub fn top_m_excluding(scores: &[f64], exclude: &[u32], m: usize) -> Vec<Recommendation> {
    top_k_excluding(scores, exclude, m)
        .into_iter()
        .map(|(probability, item)| Recommendation { item, probability })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: full sort + truncate.
    fn by_sort(scores: &[f64], exclude: &[u32], m: usize) -> Vec<Recommendation> {
        let mut all: Vec<Recommendation> = scores
            .iter()
            .enumerate()
            .filter(|(i, _)| exclude.binary_search(&(*i as u32)).is_err())
            .map(|(item, &probability)| Recommendation { item, probability })
            .collect();
        all.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .unwrap()
                .then_with(|| a.item.cmp(&b.item))
        });
        all.truncate(m);
        all
    }

    #[test]
    fn matches_sort_on_ties() {
        let scores = [0.5, 0.9, 0.5, 0.1, 0.9, 0.5];
        for m in 0..=scores.len() + 1 {
            assert_eq!(
                top_m_excluding(&scores, &[], m),
                by_sort(&scores, &[], m),
                "m = {m}"
            );
        }
    }

    #[test]
    fn exclusion_list_skipped() {
        let scores = [0.9, 0.8, 0.7, 0.6];
        let got = top_m_excluding(&scores, &[0, 2], 10);
        let items: Vec<usize> = got.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![1, 3]);
    }

    #[test]
    fn zero_m_empty() {
        assert!(top_m_excluding(&[1.0, 2.0], &[], 0).is_empty());
        let mut h = TopM::new(0);
        h.push(0, 1.0);
        assert!(h.is_empty());
    }

    #[test]
    fn smaller_than_m_returns_all_sorted() {
        let got = top_m_excluding(&[0.1, 0.3, 0.2], &[], 99);
        let items: Vec<usize> = got.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![1, 2, 0]);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn push_api_matches_free_function() {
        let scores = [0.2, 0.8, 0.8, 0.4];
        let mut heap = TopM::new(2);
        for (i, &s) in scores.iter().enumerate() {
            heap.push(i, s);
        }
        assert!(!heap.is_empty());
        assert_eq!(heap.len(), 2);
        assert_eq!(heap.into_sorted(), top_m_excluding(&scores, &[], 2));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_rejected_loudly() {
        top_m_excluding(&[0.5, f64::NAN], &[], 2);
    }
}
