//! The regularised negative log-likelihood `Q` (Eq. 2–4).
//!
//! ```text
//! Q = − Σ_{(u,i): r=1} w_u · log(1 − e^{−⟨f_u,f_i⟩})
//!     + Σ_{(u,i): r=0} ⟨f_u, f_i⟩
//!     + λ Σ_u ‖f_u‖² + λ Σ_i ‖f_i‖²
//! ```
//!
//! with `w_u ≡ 1` for plain OCuLaR and `w_u = #neg(u)/#pos(u)` for
//! R-OCuLaR. The unknown-pair term is evaluated with the same sum-trick the
//! gradients use: `Σ_{r=0} ⟨f_u,f_i⟩ = ⟨Σ_u f_u, Σ_i f_i⟩ − Σ_{r=1} ⟨f_u,f_i⟩`,
//! so the whole objective costs `O(nnz·K + (n_u + n_i)·K)`.

use crate::model::{FactorModel, P_MIN};
use ocular_linalg::ops;
use ocular_sparse::CsrMatrix;

/// Per-positive-example loss `−log(1 − e^{−p})`, clamped at `p = P_MIN`.
#[inline]
pub fn pair_loss(p: f64) -> f64 {
    let p = p.max(P_MIN);
    -(-(-p).exp_m1()).ln()
}

/// Gradient coefficient of a positive example:
/// `d/dp [−w·log(1 − e^{−p})] = −w · e^{−p}/(1 − e^{−p}) = −w / expm1(p)`.
/// Returns the *positive* magnitude `w / expm1(p)` (clamped); callers
/// subtract it. With `w = 1` this is the `α(p) − 1` of the GPU kernel
/// formulation (Eq. 11 uses `α(p) = 1/(1 − e^{−p}) = 1 + 1/expm1(p)`).
#[inline]
pub fn positive_coefficient(p: f64, w: f64) -> f64 {
    w / p.max(P_MIN).exp_m1()
}

/// Per-user weights for the chosen [`crate::Weighting`].
pub fn user_weights(r: &CsrMatrix, weighting: crate::Weighting) -> Vec<f64> {
    match weighting {
        crate::Weighting::Absolute => vec![1.0; r.n_rows()],
        crate::Weighting::Relative => {
            let n_items = r.n_cols() as f64;
            (0..r.n_rows())
                .map(|u| {
                    let pos = r.row_nnz(u) as f64;
                    if pos == 0.0 {
                        0.0
                    } else {
                        (n_items - pos) / pos
                    }
                })
                .collect()
        }
    }
}

/// Evaluates the full objective `Q` for the current factors.
pub fn objective(r: &CsrMatrix, model: &FactorModel, lambda: f64, weights: &[f64]) -> f64 {
    objective_parts(r, &model.user_factors, &model.item_factors, lambda, weights)
}

/// [`objective`] on raw factor matrices — the trainer's hot path (no model
/// wrapper, no clones).
pub fn objective_parts(
    r: &CsrMatrix,
    user_factors: &ocular_linalg::Matrix,
    item_factors: &ocular_linalg::Matrix,
    lambda: f64,
    weights: &[f64],
) -> f64 {
    debug_assert_eq!(weights.len(), r.n_rows());
    let mut q = 0.0;
    // positive-example terms, and ⟨f_u,f_i⟩ over positives for the sum-trick
    let mut pos_affinity_sum = 0.0;
    for u in 0..r.n_rows() {
        let fu = user_factors.row(u);
        let w = weights[u];
        for &i in r.row(u) {
            let p = ops::dot(fu, item_factors.row(i as usize));
            q += w * pair_loss(p);
            pos_affinity_sum += p;
        }
    }
    // unknown-pair term via the sum-trick
    let su = user_factors.column_sums();
    let si = item_factors.column_sums();
    q += ops::dot(&su, &si) - pos_affinity_sum;
    // regularizer
    q += lambda * (user_factors.frobenius_sq() + item_factors.frobenius_sq());
    q
}

/// Naive `O(n_u · n_i · K)` objective used to validate the sum-trick in
/// tests and the ablation bench. Do not call on real data sizes.
pub fn objective_naive(r: &CsrMatrix, model: &FactorModel, lambda: f64, weights: &[f64]) -> f64 {
    let mut q = 0.0;
    for u in 0..r.n_rows() {
        let fu = model.user_factors.row(u);
        for i in 0..r.n_cols() {
            let p = ops::dot(fu, model.item_factors.row(i));
            if r.contains(u, i) {
                q += weights[u] * pair_loss(p);
            } else {
                q += p;
            }
        }
    }
    q + lambda * (model.user_factors.frobenius_sq() + model.item_factors.frobenius_sq())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Weighting;
    use ocular_linalg::Matrix;

    fn toy_model() -> FactorModel {
        FactorModel::new(
            Matrix::from_rows(&[&[1.0, 0.2], &[0.1, 0.8]]),
            Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.7], &[0.4, 0.4]]),
            false,
        )
    }

    fn toy_matrix() -> CsrMatrix {
        CsrMatrix::from_pairs(2, 3, &[(0, 0), (1, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn pair_loss_decreases_in_affinity() {
        assert!(pair_loss(0.1) > pair_loss(1.0));
        assert!(pair_loss(1.0) > pair_loss(5.0));
        assert!(pair_loss(5.0) > 0.0);
    }

    #[test]
    fn pair_loss_finite_at_zero() {
        let v = pair_loss(0.0);
        assert!(v.is_finite());
        assert!(v > 20.0, "clamped loss at p=0 should be large: {v}");
    }

    #[test]
    fn positive_coefficient_matches_derivative() {
        // numeric derivative of pair_loss
        for &p in &[0.05f64, 0.3, 1.0, 3.0] {
            let h = 1e-7;
            let numeric = (pair_loss(p + h) - pair_loss(p - h)) / (2.0 * h);
            let analytic = -positive_coefficient(p, 1.0);
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "p={p}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn objective_matches_naive() {
        let r = toy_matrix();
        let m = toy_model();
        let w = user_weights(&r, Weighting::Absolute);
        let fast = objective(&r, &m, 0.7, &w);
        let naive = objective_naive(&r, &m, 0.7, &w);
        assert!((fast - naive).abs() < 1e-10, "fast {fast} vs naive {naive}");
    }

    #[test]
    fn objective_matches_naive_weighted() {
        let r = toy_matrix();
        let m = toy_model();
        let w = user_weights(&r, Weighting::Relative);
        let fast = objective(&r, &m, 0.0, &w);
        let naive = objective_naive(&r, &m, 0.0, &w);
        assert!((fast - naive).abs() < 1e-10);
    }

    #[test]
    fn relative_weights_formula() {
        let r = toy_matrix(); // user 0: 1 positive of 3 items; user 1: 2 of 3
        let w = user_weights(&r, Weighting::Relative);
        assert!((w[0] - 2.0).abs() < 1e-12); // (3-1)/1
        assert!((w[1] - 0.5).abs() < 1e-12); // (3-2)/2
    }

    #[test]
    fn relative_weights_zero_for_cold_users() {
        let r = CsrMatrix::from_pairs(2, 3, &[(0, 0)]).unwrap();
        let w = user_weights(&r, Weighting::Relative);
        assert_eq!(w[1], 0.0);
    }

    #[test]
    fn regularizer_increases_objective() {
        let r = toy_matrix();
        let m = toy_model();
        let w = user_weights(&r, Weighting::Absolute);
        assert!(objective(&r, &m, 1.0, &w) > objective(&r, &m, 0.0, &w));
    }

    #[test]
    fn better_fit_has_lower_objective() {
        let r = toy_matrix();
        let w = user_weights(&r, Weighting::Absolute);
        // a model aligned with the positives
        let good = FactorModel::new(
            Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]),
            Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0], &[0.0, 2.0]]),
            false,
        );
        // a model aligned with the *unknowns*
        let bad = FactorModel::new(
            Matrix::from_rows(&[&[0.0, 2.0], &[2.0, 0.0]]),
            Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0], &[0.0, 2.0]]),
            false,
        );
        assert!(objective(&r, &good, 0.0, &w) < objective(&r, &bad, 0.0, &w));
    }
}
