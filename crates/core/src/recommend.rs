//! Top-M recommendation lists (Section IV-C).
//!
//! *"we recommend item i to user u if r_ui is among the M largest values
//! P[r_ui' = 1], where i' is over all items that user u did not purchase"*.
//! Ties break by ascending item index, matching the evaluation crate's
//! convention, so model + evaluation agree exactly.

use crate::model::FactorModel;
use crate::topm::top_m_excluding;
use ocular_sparse::CsrMatrix;

/// One recommendation: an item and the model's confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The recommended item.
    pub item: usize,
    /// `P[r_ui = 1]` under the fitted model.
    pub probability: f64,
}

/// The top-M recommendations for user `u`, excluding items the user already
/// has in `r` (the training matrix). Sorted by probability descending,
/// ties by item index ascending.
///
/// Selection runs through the bounded-heap kernel
/// [`top_m_excluding`] — `O(n_items log M)`
/// instead of a full sort — and the exclusion filter compares indices in
/// the `usize` domain, so oversized catalogs can never wrap a `u32` cast
/// and silently corrupt filtering.
pub fn recommend_top_m(
    model: &FactorModel,
    r: &CsrMatrix,
    u: usize,
    m: usize,
) -> Vec<Recommendation> {
    let mut scores = Vec::new();
    model.score_user(u, &mut scores);
    top_m_excluding(&scores, r.row(u), m)
}

/// Top-M lists for every user. Memory: `n_users × m` recommendations.
pub fn recommend_all(model: &FactorModel, r: &CsrMatrix, m: usize) -> Vec<Vec<Recommendation>> {
    (0..model.n_users())
        .map(|u| recommend_top_m(model, r, u, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_linalg::Matrix;

    fn model() -> FactorModel {
        // user 0 strongly in cluster 0; items 0..2 in cluster 0 with
        // decreasing strength; item 3 in cluster 1 only
        FactorModel::new(
            Matrix::from_rows(&[&[2.0, 0.0]]),
            Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 0.0], &[0.5, 0.0], &[0.0, 2.0]]),
            false,
        )
    }

    #[test]
    fn ranks_by_probability() {
        let r = CsrMatrix::empty(1, 4);
        let recs = recommend_top_m(&model(), &r, 0, 4);
        let items: Vec<usize> = recs.iter().map(|x| x.item).collect();
        assert_eq!(items, vec![0, 1, 2, 3]);
        for w in recs.windows(2) {
            assert!(w[0].probability >= w[1].probability);
        }
    }

    #[test]
    fn excludes_owned_items() {
        let r = CsrMatrix::from_pairs(1, 4, &[(0, 0)]).unwrap();
        let recs = recommend_top_m(&model(), &r, 0, 4);
        assert!(recs.iter().all(|x| x.item != 0));
        assert_eq!(recs.len(), 3);
    }

    #[test]
    fn truncates_to_m() {
        let r = CsrMatrix::empty(1, 4);
        let recs = recommend_top_m(&model(), &r, 0, 2);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].item, 0);
    }

    #[test]
    fn probabilities_match_model() {
        let m = model();
        let r = CsrMatrix::empty(1, 4);
        for rec in recommend_top_m(&m, &r, 0, 4) {
            assert!((rec.probability - m.prob(0, rec.item)).abs() < 1e-15);
        }
    }

    #[test]
    fn recommend_all_covers_every_user() {
        let m = FactorModel::new(
            Matrix::from_rows(&[&[1.0], &[0.5], &[0.0]]),
            Matrix::from_rows(&[&[1.0], &[2.0]]),
            false,
        );
        let r = CsrMatrix::empty(3, 2);
        let all = recommend_all(&m, &r, 1);
        assert_eq!(all.len(), 3);
        // user 2 has zero affinity everywhere → ties, item 0 first
        assert_eq!(all[2][0].item, 0);
    }
}
