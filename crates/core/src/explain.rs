//! Interpretable recommendation rationales (Sections IV-C and VIII).
//!
//! A recommendation's probability is large exactly when `⟨f_u, f_i⟩ =
//! Σ_c [f_u]_c [f_i]_c` is large, so the per-cluster products decompose the
//! *why*: each contributing co-cluster names the similar clients who bought
//! the item and the items the client already owns from the same bundle —
//! the B2B rationale of Figure 10 ("explicit names of similar clients" are
//! fine in B2B, unlike B2C).

use crate::coclusters::CoCluster;
use crate::model::FactorModel;
use ocular_sparse::CsrMatrix;

/// The part of an explanation contributed by one co-cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterContribution {
    /// Factor dimension of the contributing co-cluster.
    pub cluster: usize,
    /// `[f_u]_c · [f_i]_c` — this cluster's share of the affinity.
    pub product: f64,
    /// `product / ⟨f_u, f_i⟩` ∈ [0, 1].
    pub share: f64,
    /// Similar clients: cluster members (strongest first) who *bought* the
    /// recommended item, excluding the target user.
    pub co_users: Vec<usize>,
    /// Supporting purchases: cluster items the target user already owns.
    pub supporting_items: Vec<usize>,
}

/// A full, renderable recommendation rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The user receiving the recommendation.
    pub user: usize,
    /// The recommended item.
    pub item: usize,
    /// Model confidence `P[r_ui = 1]`.
    pub probability: f64,
    /// Contributing co-clusters, largest contribution first. Clusters
    /// contributing less than 1% of the affinity are omitted.
    pub contributions: Vec<ClusterContribution>,
}

/// Builds the explanation for recommending `item` to `user`.
///
/// `clusters` is an extraction from [`crate::extract_coclusters`]; only
/// clusters containing both the user and the item contribute names, but the
/// probability decomposition uses the raw factors, so the shares always sum
/// to ≈ 1 even with a coarse threshold. At most `max_co_users` similar
/// clients are listed per cluster.
pub fn explain(
    model: &FactorModel,
    r: &CsrMatrix,
    clusters: &[CoCluster],
    user: usize,
    item: usize,
    max_co_users: usize,
) -> Explanation {
    let total = model.affinity(user, item);
    let products = model.cluster_contributions(user, item);
    let mut contributions: Vec<ClusterContribution> = Vec::new();
    for (c, &product) in products.iter().enumerate() {
        let share = if total > 0.0 { product / total } else { 0.0 };
        if share < 0.01 {
            continue;
        }
        let (co_users, supporting_items) = match clusters.iter().find(|cl| cl.index == c) {
            Some(cl) => {
                let co_users: Vec<usize> = cl
                    .users
                    .iter()
                    .copied()
                    .filter(|&v| v != user && r.contains(v, item))
                    .take(max_co_users)
                    .collect();
                let supporting: Vec<usize> = cl
                    .items
                    .iter()
                    .copied()
                    .filter(|&j| r.contains(user, j))
                    .collect();
                (co_users, supporting)
            }
            None => (Vec::new(), Vec::new()),
        };
        contributions.push(ClusterContribution {
            cluster: c,
            product,
            share,
            co_users,
            supporting_items,
        });
    }
    contributions.sort_by(|a, b| {
        b.product
            .partial_cmp(&a.product)
            .expect("finite products")
            .then_with(|| a.cluster.cmp(&b.cluster))
    });
    Explanation {
        user,
        item,
        probability: model.prob(user, item),
        contributions,
    }
}

impl Explanation {
    /// Renders the rationale as text with generic labels
    /// (`Client 6`, `Item 4`).
    pub fn render(&self) -> String {
        self.render_with(&|u| format!("Client {u}"), &|i| format!("Item {i}"))
    }

    /// Renders with custom naming functions — the deployment path of
    /// Figure 10, where co-clusters list real company and product names.
    pub fn render_with(
        &self,
        user_name: &dyn Fn(usize) -> String,
        item_name: &dyn Fn(usize) -> String,
    ) -> String {
        let mut out = format!(
            "{item} is recommended to {user} with confidence {conf:.1}%, because:\n",
            item = item_name(self.item),
            user = user_name(self.user),
            conf = self.probability * 100.0
        );
        if self.contributions.is_empty() {
            out.push_str(
                "  (no co-cluster evidence: the model assigns this pair background probability)\n",
            );
            return out;
        }
        for (rank, c) in self.contributions.iter().enumerate() {
            out.push_str(&format!(
                "  {}. Co-cluster {} contributes {:.0}% of the confidence.\n",
                (b'A' + rank as u8) as char,
                c.cluster,
                c.share * 100.0
            ));
            if !c.supporting_items.is_empty() {
                let items: Vec<String> = c.supporting_items.iter().map(|&i| item_name(i)).collect();
                out.push_str(&format!(
                    "     {} has already purchased {} from this bundle.\n",
                    user_name(self.user),
                    items.join(", ")
                ));
            }
            if !c.co_users.is_empty() {
                let users: Vec<String> = c.co_users.iter().map(|&u| user_name(u)).collect();
                out.push_str(&format!(
                    "     Clients with similar purchase history ({}) also bought {}.\n",
                    users.join(", "),
                    item_name(self.item)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coclusters::extract_coclusters;
    use ocular_linalg::Matrix;

    /// Two co-clusters; user 0 in both, item 0 in both; user 1 in cluster 0
    /// only; item 1 in cluster 1 only.
    fn setup() -> (FactorModel, CsrMatrix) {
        let model = FactorModel::new(
            Matrix::from_rows(&[&[1.0, 1.0], &[1.2, 0.0]]),
            Matrix::from_rows(&[&[1.5, 1.0], &[0.0, 1.4]]),
            false,
        );
        // user 1 bought item 0; user 0 bought item 1
        let r = CsrMatrix::from_pairs(2, 2, &[(1, 0), (0, 1)]).unwrap();
        (model, r)
    }

    #[test]
    fn shares_sum_to_one() {
        let (model, r) = setup();
        let clusters = extract_coclusters(&model, 0.9);
        let e = explain(&model, &r, &clusters, 0, 0, 5);
        let total: f64 = e.contributions.iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn contributions_sorted_desc() {
        let (model, r) = setup();
        let clusters = extract_coclusters(&model, 0.9);
        let e = explain(&model, &r, &clusters, 0, 0, 5);
        assert_eq!(e.contributions.len(), 2);
        assert!(e.contributions[0].product >= e.contributions[1].product);
        // cluster 0 contributes 1.0·1.5 = 1.5 > cluster 1's 1.0·1.0
        assert_eq!(e.contributions[0].cluster, 0);
    }

    #[test]
    fn co_users_bought_the_item() {
        let (model, r) = setup();
        let clusters = extract_coclusters(&model, 0.9);
        let e = explain(&model, &r, &clusters, 0, 0, 5);
        let c0 = &e.contributions[0];
        // user 1 is in cluster 0 and bought item 0
        assert_eq!(c0.co_users, vec![1]);
    }

    #[test]
    fn supporting_items_owned_by_user() {
        let (model, r) = setup();
        let clusters = extract_coclusters(&model, 0.9);
        let e = explain(&model, &r, &clusters, 0, 0, 5);
        // cluster 1 contains item 1, which user 0 owns
        let c1 = e.contributions.iter().find(|c| c.cluster == 1).unwrap();
        assert_eq!(c1.supporting_items, vec![1]);
    }

    #[test]
    fn target_user_never_a_co_user() {
        let (model, r) = setup();
        let clusters = extract_coclusters(&model, 0.9);
        let e = explain(&model, &r, &clusters, 0, 0, 5);
        for c in &e.contributions {
            assert!(!c.co_users.contains(&0));
        }
    }

    #[test]
    fn zero_affinity_pair_has_no_contributions() {
        let (model, r) = setup();
        let clusters = extract_coclusters(&model, 0.9);
        // user 1 × item 1: affinity = 1.2·0 + 0·1.4 = 0
        let e = explain(&model, &r, &clusters, 1, 1, 5);
        assert!(e.contributions.is_empty());
        assert_eq!(e.probability, 0.0);
        assert!(e.render().contains("no co-cluster evidence"));
    }

    #[test]
    fn render_mentions_names_and_confidence() {
        let (model, r) = setup();
        let clusters = extract_coclusters(&model, 0.9);
        let e = explain(&model, &r, &clusters, 0, 0, 5);
        let text = e.render();
        assert!(text.contains("Item 0 is recommended to Client 0"));
        assert!(text.contains("confidence"));
        assert!(
            text.contains("Client 1"),
            "similar client must be named: {text}"
        );
        let custom = e.render_with(&|u| format!("ACME-{u}"), &|i| {
            format!("\"Custom Cloud {i}\"")
        });
        assert!(custom.contains("ACME-1"));
        assert!(custom.contains("\"Custom Cloud 0\""));
    }

    #[test]
    fn max_co_users_respected() {
        // many similar users
        let model = FactorModel::new(
            Matrix::from_rows(&[&[1.0], &[1.0], &[1.0], &[1.0], &[1.0]]),
            Matrix::from_rows(&[&[1.5]]),
            false,
        );
        let r = CsrMatrix::from_pairs(5, 1, &[(1, 0), (2, 0), (3, 0), (4, 0)]).unwrap();
        let clusters = extract_coclusters(&model, 0.9);
        let e = explain(&model, &r, &clusters, 0, 0, 2);
        assert_eq!(e.contributions[0].co_users.len(), 2);
    }
}
