//! [`FactorModel`]'s seat in the workspace trait hierarchy
//! ([`ocular_api`]): OCuLaR is just one [`Recommender`] among the model
//! zoo — but the only one with co-cluster [`Explain`] provenance.
//!
//! The impls delegate to the specialised machinery in this crate
//! ([`crate::recommend`], [`crate::foldin`], [`mod@crate::explain`],
//! [`crate::model`]), so trait consumers and direct callers observe
//! bitwise-identical behaviour.

use crate::config::OcularConfig;
use crate::foldin::fold_in_user;
use crate::model::{prob_from_affinity, FactorModel};
use ocular_api::{
    validate_basket, ClusterEvidence, Explain, FoldIn, OcularError, Provenance, Recommender,
    ScoreItems, SnapshotModel,
};
use ocular_linalg::{ops, Matrix};
use ocular_sparse::CsrMatrix;

/// The solver configuration the trait-level cold-start path folds in with:
/// [`OcularConfig::default`] — the same configuration
/// `ocular_serve::ServeConfig::default()` hands the engine's fold-in, so
/// the trait path and a default-configured engine score a basket
/// identically. Callers needing the exact training λ use
/// [`crate::fold_in_user`] directly or configure the serving engine.
fn default_foldin_config() -> OcularConfig {
    OcularConfig::default()
}

impl ScoreItems for FactorModel {
    fn name(&self) -> &'static str {
        "OCuLaR"
    }

    fn n_users(&self) -> usize {
        FactorModel::n_users(self)
    }

    fn n_items(&self) -> usize {
        FactorModel::n_items(self)
    }

    fn score_user(&self, u: usize, out: &mut Vec<f64>) {
        FactorModel::score_user(self, u, out);
    }
}

impl Recommender for FactorModel {
    fn as_fold_in(&self) -> Option<&dyn FoldIn> {
        Some(self)
    }

    fn as_explain(&self) -> Option<&dyn Explain> {
        Some(self)
    }
}

impl FoldIn for FactorModel {
    fn score_basket(&self, basket: &[usize], out: &mut Vec<f64>) -> Result<(), OcularError> {
        validate_basket(basket, FactorModel::n_items(self))?;
        let fold = fold_in_user(self, basket, &default_foldin_config(), 1.0, 100);
        out.clear();
        out.resize(FactorModel::n_items(self), 0.0);
        for (i, s) in out.iter_mut().enumerate() {
            *s = prob_from_affinity(ops::dot(&fold.factors, self.item_factors.row(i)));
        }
        Ok(())
    }
}

impl Explain for FactorModel {
    fn provenance(
        &self,
        interactions: &CsrMatrix,
        user: usize,
        item: usize,
        max_co_users: usize,
    ) -> Result<Provenance, OcularError> {
        let (n_users, n_items) = (FactorModel::n_users(self), FactorModel::n_items(self));
        if interactions.n_rows() != n_users || interactions.n_cols() != n_items {
            return Err(OcularError::ShapeMismatch {
                expected: (n_users, n_items),
                found: (interactions.n_rows(), interactions.n_cols()),
            });
        }
        if user >= n_users {
            return Err(OcularError::UnknownUser { user, n_users });
        }
        if item >= n_items {
            return Err(OcularError::UnknownItem { item, n_items });
        }
        let clusters = crate::coclusters::extract_coclusters(self, crate::default_threshold());
        let e = crate::explain::explain(self, interactions, &clusters, user, item, max_co_users);
        Ok(Provenance {
            user: e.user,
            item: e.item,
            score: e.probability,
            evidence: e
                .contributions
                .into_iter()
                .map(|c| ClusterEvidence {
                    cluster: c.cluster,
                    share: c.share,
                    co_users: c.co_users,
                    supporting_items: c.supporting_items,
                })
                .collect(),
        })
    }
}

impl FactorModel {
    /// Snapshot kind tag — the single definition both the snapshot writer
    /// and the polymorphic loader dispatch on.
    pub const KIND: &'static str = "ocular";
}

impl SnapshotModel for FactorModel {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn save_model(&self, mut w: &mut dyn std::io::Write) -> std::io::Result<()> {
        self.save(&mut w)
    }

    fn load_model(mut r: &mut dyn std::io::BufRead) -> Result<Self, OcularError> {
        FactorModel::load(&mut r).map_err(OcularError::from)
    }

    fn write_sections(&self, w: &mut ocular_api::SectionWriter) -> Result<(), OcularError> {
        w.put_u64s(
            "meta",
            &[
                self.n_users() as u64,
                self.n_items() as u64,
                self.k_total() as u64,
                u64::from(self.has_bias()),
            ],
        );
        w.put_f64s("ufact", self.user_factors.as_slice());
        w.put_f64s("ifact", self.item_factors.as_slice());
        Ok(())
    }

    fn read_sections(r: &ocular_api::SectionReader) -> Result<Self, OcularError> {
        use ocular_api::SectionReader;
        let [n_users, n_items, k_total, has_bias] = r.u64_meta::<4>("meta")?;
        if has_bias > 1 {
            return Err(OcularError::Corrupt(format!(
                "bias flag must be 0 or 1, got {has_bias}"
            )));
        }
        let n_users = SectionReader::shape(n_users, "n_users")?;
        let n_items = SectionReader::shape(n_items, "n_items")?;
        let k_total = SectionReader::shape(k_total, "k_total")?;
        // the factor matrices borrow the reader's byte region — the
        // zero-copy serving path
        let user_factors = Matrix::from_shared(n_users, k_total, r.f64s("ufact")?)
            .map_err(OcularError::Corrupt)?;
        let item_factors = Matrix::from_shared(n_items, k_total, r.f64s("ifact")?)
            .map_err(OcularError::Corrupt)?;
        FactorModel::try_new(user_factors, item_factors, has_bias == 1)
            .map_err(|e| OcularError::Corrupt(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recommend::recommend_top_m;
    use crate::{fit, OcularConfig};

    fn trained() -> (FactorModel, CsrMatrix) {
        let mut pairs = Vec::new();
        for b in 0..2 {
            for u in 0..4 {
                for i in 0..4 {
                    pairs.push((b * 4 + u, b * 4 + i));
                }
            }
        }
        let r = CsrMatrix::from_pairs(8, 8, &pairs).unwrap();
        let cfg = OcularConfig {
            k: 2,
            lambda: 0.5,
            max_iters: 60,
            seed: 3,
            ..Default::default()
        };
        (fit(&r.clone().into(), &cfg).model, r)
    }

    #[test]
    fn trait_recommend_matches_recommend_top_m_bitwise() {
        let (model, r) = trained();
        for u in 0..8 {
            let via_trait = model.recommend(u, r.row(u), 3).unwrap();
            let direct = recommend_top_m(&model, &r, u, 3);
            assert_eq!(via_trait.len(), direct.len());
            for (a, b) in via_trait.iter().zip(&direct) {
                assert_eq!(a.item, b.item);
                assert_eq!(a.score, b.probability, "user {u}: scores must be bitwise");
            }
        }
    }

    #[test]
    fn capabilities_are_discoverable() {
        let (model, r) = trained();
        assert!(model.as_fold_in().is_some());
        assert!(model.as_explain().is_some());
        let mut scores = Vec::new();
        model
            .as_fold_in()
            .unwrap()
            .score_basket(&[0, 1], &mut scores)
            .unwrap();
        assert_eq!(scores.len(), 8);
        // block-A basket scores block A above block B
        assert!(scores[2] > scores[6]);
        let p = model.as_explain().unwrap().provenance(&r, 0, 2, 3).unwrap();
        assert_eq!((p.user, p.item), (0, 2));
        assert!(!p.evidence.is_empty());
    }

    #[test]
    fn provenance_validates_inputs() {
        let (model, r) = trained();
        assert!(matches!(
            model.provenance(&CsrMatrix::empty(2, 2), 0, 0, 3),
            Err(OcularError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            model.provenance(&r, 99, 0, 3),
            Err(OcularError::UnknownUser { .. })
        ));
        assert!(matches!(
            model.provenance(&r, 0, 99, 3),
            Err(OcularError::UnknownItem { .. })
        ));
    }

    #[test]
    fn fold_in_rejects_bad_baskets_without_panicking() {
        let (model, _) = trained();
        let mut scores = Vec::new();
        assert!(matches!(
            model.score_basket(&[99], &mut scores),
            Err(OcularError::BadBasket(_))
        ));
        assert!(matches!(
            model.score_basket(&[1, 1], &mut scores),
            Err(OcularError::BadBasket(_))
        ));
    }

    #[test]
    fn snapshot_model_roundtrips() {
        let (model, _) = trained();
        assert_eq!(SnapshotModel::kind(&model), "ocular");
        let mut buf: Vec<u8> = Vec::new();
        model.save_model(&mut buf).unwrap();
        let loaded = <FactorModel as SnapshotModel>::load_model(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded, model);
        assert!(matches!(
            <FactorModel as SnapshotModel>::load_model(&mut "junk".as_bytes()),
            Err(OcularError::Corrupt(_))
        ));
    }
}
