//! Figure 8 instrumentation: likelihood-versus-wall-clock traces.
//!
//! The paper plots *distance to optimal training likelihood* against time
//! for the CPU and GPU implementations; the GPU curve reaches any target
//! accuracy ~57× sooner. These helpers turn [`TrainingHistory`] telemetry
//! into such traces and compute the speedup at a target.

use ocular_core::trainer::TrainingHistory;

/// Objective values paired with cumulative wall-clock seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedTrace {
    /// `seconds[j]` = cumulative time when `objective[j]` was reached;
    /// entry 0 is the initial objective at t = 0.
    pub seconds: Vec<f64>,
    /// Objective values (non-increasing for line-search training).
    pub objective: Vec<f64>,
}

impl TimedTrace {
    /// Builds from trainer telemetry.
    pub fn from_history(h: &TrainingHistory) -> TimedTrace {
        let mut seconds = Vec::with_capacity(h.objective.len());
        seconds.push(0.0);
        let mut acc = 0.0;
        for &s in &h.sweep_seconds {
            acc += s;
            seconds.push(acc);
        }
        TimedTrace {
            seconds,
            objective: h.objective.clone(),
        }
    }

    /// First time at which the objective is `<= target`, if reached.
    pub fn time_to_reach(&self, target: f64) -> Option<f64> {
        self.objective
            .iter()
            .position(|&q| q <= target)
            .map(|ix| self.seconds[ix])
    }

    /// Final (best) objective.
    pub fn best(&self) -> f64 {
        self.objective.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The Figure 8 y-axis: `objective − q_opt` per point, with `q_opt`
    /// supplied by the caller (the best value across all compared traces).
    pub fn distance_to(&self, q_opt: f64) -> Vec<f64> {
        self.objective
            .iter()
            .map(|&q| (q - q_opt).max(0.0))
            .collect()
    }

    /// CSV serialisation (`seconds,objective`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("seconds,objective\n");
        for (s, q) in self.seconds.iter().zip(&self.objective) {
            out.push_str(&format!("{s:.6},{q:.6}\n"));
        }
        out
    }
}

/// Speedup of `fast` over `slow` at the accuracy target
/// `q_opt + rel_gap · |q_opt|`, where `q_opt` is the best objective either
/// trace reached. Returns `None` if either trace never reaches the target.
pub fn speedup_at_threshold(slow: &TimedTrace, fast: &TimedTrace, rel_gap: f64) -> Option<f64> {
    let q_opt = slow.best().min(fast.best());
    let target = q_opt + rel_gap * q_opt.abs();
    let ts = slow.time_to_reach(target)?;
    let tf = fast.time_to_reach(target)?;
    if tf <= 0.0 {
        return None;
    }
    Some(ts / tf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history(times: &[f64], obj: &[f64]) -> TrainingHistory {
        TrainingHistory {
            objective: obj.to_vec(),
            sweep_seconds: times.to_vec(),
            converged: true,
        }
    }

    #[test]
    fn trace_accumulates_time() {
        let h = history(&[1.0, 2.0, 3.0], &[100.0, 50.0, 25.0, 12.0]);
        let t = TimedTrace::from_history(&h);
        assert_eq!(t.seconds, vec![0.0, 1.0, 3.0, 6.0]);
        assert_eq!(t.objective.len(), 4);
    }

    #[test]
    fn time_to_reach_interpolates_at_points() {
        let t = TimedTrace {
            seconds: vec![0.0, 1.0, 3.0],
            objective: vec![100.0, 40.0, 10.0],
        };
        assert_eq!(t.time_to_reach(100.0), Some(0.0));
        assert_eq!(t.time_to_reach(40.0), Some(1.0));
        assert_eq!(t.time_to_reach(39.0), Some(3.0));
        assert_eq!(t.time_to_reach(5.0), None);
    }

    #[test]
    fn speedup_computed_from_traces() {
        // slow reaches 10 at t=30; fast reaches 10 at t=3 → speedup 10
        let slow = TimedTrace {
            seconds: vec![0.0, 30.0],
            objective: vec![100.0, 10.0],
        };
        let fast = TimedTrace {
            seconds: vec![0.0, 3.0],
            objective: vec![100.0, 10.0],
        };
        let s = speedup_at_threshold(&slow, &fast, 1e-9).unwrap();
        assert!((s - 10.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_none_when_unreached() {
        let slow = TimedTrace {
            seconds: vec![0.0, 1.0],
            objective: vec![100.0, 90.0],
        };
        let fast = TimedTrace {
            seconds: vec![0.0, 1.0],
            objective: vec![100.0, 10.0],
        };
        // target is near 10; slow never reaches it
        assert!(speedup_at_threshold(&slow, &fast, 1e-6).is_none());
    }

    #[test]
    fn distance_to_optimal_clamps_at_zero() {
        let t = TimedTrace {
            seconds: vec![0.0, 1.0],
            objective: vec![5.0, 2.0],
        };
        assert_eq!(t.distance_to(2.0), vec![3.0, 0.0]);
        assert_eq!(t.best(), 2.0);
    }

    #[test]
    fn csv_renders() {
        let t = TimedTrace {
            seconds: vec![0.0, 0.5],
            objective: vec![2.0, 1.0],
        };
        let csv = t.to_csv();
        assert!(csv.contains("seconds,objective"));
        assert!(csv.contains("0.500000,1.000000"));
    }
}
