//! A small persistent worker pool for the serving tier.
//!
//! [`rayon`]'s scoped data parallelism fits batch computations that start
//! and finish inside one call; the network front-end instead needs
//! **long-lived** workers that pull submitted jobs off a queue while the
//! I/O thread keeps multiplexing connections. [`WorkerPool`] is that
//! primitive: N threads draining one shared channel of boxed closures,
//! joined on drop so a server shutdown cannot leak threads.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of named worker threads executing submitted closures
/// in FIFO submission order (each worker pulls the next job as it becomes
/// free).
///
/// Dropping the pool closes the queue, lets every already-submitted job
/// finish, and joins all workers — a deterministic, leak-free shutdown.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> WorkerPool {
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads.max(1))
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("ocular-worker-{i}"))
                    .spawn(move || loop {
                        // hold the lock only while dequeuing, never while
                        // running the job
                        let job = match receiver.lock().expect("pool queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => return, // queue closed: pool dropped
                        };
                        job();
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job; it runs on the first free worker. Never blocks the
    /// caller (the queue is unbounded — admission control belongs to the
    /// caller, which is exactly what the serving tier's bounded pending
    /// queue does).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool alive while not dropped")
            .send(Box::new(job))
            .expect("workers alive while pool is");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // closing the channel is the shutdown signal…
        drop(self.sender.take());
        // …after which every worker drains remaining jobs and exits
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn executes_all_jobs_across_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_drains_pending_jobs_then_joins() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // drop happens here: all 50 must still run
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = mpsc::channel();
        pool.execute(move || tx.send(7).unwrap());
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            7
        );
    }
}
