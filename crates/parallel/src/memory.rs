//! Device-memory footprint model (Section VI-A, "Memory").
//!
//! *"The memory footprint of the GPU-based OCuLaR implementation scales as
//! `O(max(|{(u,i): r_ui=1}|, n_u·K, n_i·K))` … around 2.7 GB of GPU memory
//! is required to train on the Netflix dataset (assuming K = 200)"* —
//! comfortably inside a 12 GB device, in contrast to the ALS-on-GPU attempt
//! of Tan et al. that exceeded 12 GB at the equivalent of K = 100.

/// Byte-level accounting of the device-resident training state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryModel {
    /// Number of positive examples.
    pub nnz: usize,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of co-clusters `K`.
    pub k: usize,
    /// Bytes per factor scalar (the paper's GPU kernels use `f32`; this
    /// crate's simulation uses `f64`).
    pub bytes_per_scalar: usize,
}

impl MemoryModel {
    /// The paper's GPU precision (f32).
    pub fn gpu_f32(nnz: usize, n_users: usize, n_items: usize, k: usize) -> Self {
        MemoryModel {
            nnz,
            n_users,
            n_items,
            k,
            bytes_per_scalar: 4,
        }
    }

    /// This crate's host simulation precision (f64).
    pub fn host_f64(nnz: usize, n_users: usize, n_items: usize, k: usize) -> Self {
        MemoryModel {
            nnz,
            n_users,
            n_items,
            k,
            bytes_per_scalar: 8,
        }
    }

    /// Sparse training data in CSR + COO form: row pointers, column
    /// indices, and the per-rating (u, i) work list the kernel launches
    /// over (u32 each).
    pub fn training_data_bytes(&self) -> u64 {
        let csr = (self.n_users as u64 + 1) * 8 + self.nnz as u64 * 4;
        let work_list = self.nnz as u64 * 8; // (u32, u32) per positive
        csr + work_list
    }

    /// Factor matrices `F_u`, `F_i`.
    pub fn factor_bytes(&self) -> u64 {
        (self.n_users as u64 + self.n_items as u64) * self.k as u64 * self.bytes_per_scalar as u64
    }

    /// Gradient buffers (one per side, reused across half-sweeps) plus the
    /// `Σ f` constant vector.
    pub fn gradient_bytes(&self) -> u64 {
        self.factor_bytes() + self.k as u64 * self.bytes_per_scalar as u64
    }

    /// Total device-resident bytes.
    pub fn total_bytes(&self) -> u64 {
        self.training_data_bytes() + self.factor_bytes() + self.gradient_bytes()
    }

    /// The paper's asymptotic expression `max(nnz, n_u·K, n_i·K)` in
    /// scalars — useful for checking which term dominates.
    pub fn dominant_term(&self) -> u64 {
        (self.nnz as u64)
            .max(self.n_users as u64 * self.k as u64)
            .max(self.n_items as u64 * self.k as u64)
    }

    /// Whether the model fits a device with `device_gb` gigabytes.
    pub fn fits_in_gb(&self, device_gb: f64) -> bool {
        (self.total_bytes() as f64) < device_gb * 1e9
    }
}

/// The paper's worked example: Netflix (≥3-star positives) at `K = 200`.
/// 100,480,507 ratings of which ≈ 56.5% are ≥ 3 stars → ≈ 56.8 M positives.
pub fn paper_netflix_example() -> MemoryModel {
    MemoryModel::gpu_f32(56_800_000, 480_189, 17_770, 200)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netflix_k200_is_gigabyte_scale_and_fits_12gb() {
        let m = paper_netflix_example();
        let gb = m.total_bytes() as f64 / 1e9;
        // the paper reports ≈ 2.7 GB; our accounting (which itemises the
        // work list and gradient buffers explicitly) must land in the same
        // ballpark and far under the 12 GB device limit
        assert!(
            (0.5..6.0).contains(&gb),
            "Netflix/K=200 footprint should be a few GB, got {gb:.2} GB"
        );
        assert!(m.fits_in_gb(12.0), "must fit an inexpensive 12 GB GPU");
    }

    #[test]
    fn users_term_dominates_netflix() {
        let m = paper_netflix_example();
        // n_u·K = 96 M > nnz = 56.8 M > n_i·K = 3.6 M
        assert_eq!(m.dominant_term(), 480_189 * 200);
    }

    #[test]
    fn footprint_scales_linearly_in_k() {
        let a = MemoryModel::gpu_f32(1_000_000, 10_000, 1_000, 50);
        let b = MemoryModel::gpu_f32(1_000_000, 10_000, 1_000, 100);
        let fa = a.factor_bytes();
        let fb = b.factor_bytes();
        assert_eq!(fb, 2 * fa);
        // training data unaffected by K
        assert_eq!(a.training_data_bytes(), b.training_data_bytes());
    }

    #[test]
    fn f64_doubles_factor_memory() {
        let gpu = MemoryModel::gpu_f32(1000, 100, 50, 10);
        let host = MemoryModel::host_f64(1000, 100, 50, 10);
        assert_eq!(host.factor_bytes(), 2 * gpu.factor_bytes());
    }

    #[test]
    fn contrast_with_als_attempt() {
        // Tan et al.'s ALS-on-GPU exceeded 12 GB at the equivalent of
        // K = 100 on the same dataset; the OCuLaR layout at *twice* that K
        // stays small — the comparison the paper draws
        let ocular = paper_netflix_example();
        assert!(ocular.fits_in_gb(12.0));
        assert!(ocular.total_bytes() < 12_000_000_000 / 3);
    }
}
