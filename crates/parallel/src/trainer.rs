//! Data-parallel block-coordinate trainer — the "GPU" trainer of Figure 8.
//!
//! Within a half-sweep every factor row's subproblem reads only the *fixed*
//! side (plus its own row), so updating all items — and then all users —
//! concurrently is mathematically identical to the sequential sweep, not an
//! approximation. With both trainers starting from
//! [`ocular_core::trainer::initial_factors`], `fit_parallel` produces
//! **bitwise-identical** models to [`ocular_core::fit`]; the speedup is
//! pure wall-clock. (The per-rating atomic kernel of [`crate::kernel`],
//! which matches the paper's CUDA decomposition literally, is exposed and
//! validated separately; per-row parallelism is how the same decomposition
//! is expressed efficiently on a host with tens of threads rather than
//! thousands of CUDA cores.)

use ocular_core::config::OcularConfig;
use ocular_core::gradient::{negative_sum, LocalProblem, PosWeights};
use ocular_core::linesearch::{armijo_step, fixed_step, LineSearch, StepOutcome};
use ocular_core::loss::{objective_parts, user_weights};
use ocular_core::model::FactorModel;
use ocular_core::trainer::{bias_layout, initial_factors, TrainResult, TrainingHistory};
use ocular_linalg::Matrix;
use ocular_sparse::{CsrMatrix, Dataset};
use rayon::prelude::*;
use std::time::Instant;

/// Which side's weighting rule a half-sweep uses.
enum SideWeights<'a> {
    /// Item updates: each positive's weight is its *user's* `w_u`.
    PerCounterpart(&'a [f64]),
    /// User updates: all positives of user `u` share `w_u`.
    OwnWeight(&'a [f64]),
}

/// One parallel half-sweep over all rows of `own`.
#[allow(clippy::too_many_arguments)]
fn parallel_sweep_side(
    own: &mut Matrix,
    other: &Matrix,
    adjacency: &CsrMatrix,
    side_weights: &SideWeights<'_>,
    cfg: &OcularConfig,
    fixed_dim: Option<usize>,
    ls: &LineSearch,
    other_sum: &mut Vec<f64>,
) {
    other.column_sums_into(other_sum);
    let other_sum: &[f64] = other_sum;
    let k = own.cols();
    own.as_mut_slice()
        .par_chunks_mut(k)
        .enumerate()
        .for_each_init(
            || (vec![0.0; k], vec![0.0; k], vec![0.0; k]),
            |(negsum, grad, candidate), (e, row)| {
                let positives = adjacency.row(e);
                negative_sum(other, other_sum, positives, negsum);
                let weights = match side_weights {
                    SideWeights::PerCounterpart(w) => PosWeights::PerEntity(w),
                    SideWeights::OwnWeight(w) => PosWeights::Uniform(w[e]),
                };
                let problem = LocalProblem {
                    positives,
                    other,
                    weights,
                    negsum,
                    lambda: cfg.lambda,
                    fixed_dim,
                };
                let mut q_local = problem.objective(row);
                for _ in 0..cfg.inner_steps {
                    problem.gradient(row, grad);
                    if cfg.line_search {
                        match armijo_step(row, grad, q_local, &problem, ls, candidate) {
                            StepOutcome::Accepted { q_new, .. } => q_local = q_new,
                            StepOutcome::Rejected | StepOutcome::Stationary => break,
                        }
                    } else {
                        q_local = fixed_step(row, grad, cfg.fixed_step, &problem, candidate);
                    }
                }
            },
        );
}

/// Fits OCuLaR with data-parallel half-sweeps. Same configuration, same
/// semantics and (given the same seed) the same model as
/// [`ocular_core::fit`] — only faster on multi-core hosts.
///
/// `threads`: `None` uses rayon's global pool; `Some(n)` builds a dedicated
/// pool (used by the Figure 8 harness to emulate "CPU" = 1 thread vs
/// "GPU" = all cores on one binary).
///
/// # Panics
/// Panics if `cfg` fails validation or the thread pool cannot be built.
pub fn fit_parallel(data: &Dataset, cfg: &OcularConfig, threads: Option<usize>) -> TrainResult {
    crate::with_threads(threads, || fit_parallel_inner(data, cfg))
}

fn fit_parallel_inner(data: &Dataset, cfg: &OcularConfig) -> TrainResult {
    if let Err(msg) = cfg.validate() {
        panic!("invalid OcularConfig: {msg}");
    }
    let r: &CsrMatrix = data.matrix();
    let (user_frozen, _, item_frozen, _) = bias_layout(cfg);
    let (mut user_factors, mut item_factors) = initial_factors(r, cfg);
    let rt = data.item_view();
    let weights = user_weights(r, cfg.weighting);
    // one reusable column-sum buffer for the whole run (no per-sweep churn)
    let mut sum_buf: Vec<f64> = Vec::with_capacity(cfg.k_total());
    let ls = LineSearch {
        sigma: cfg.sigma,
        beta: cfg.beta,
        max_backtracks: cfg.max_backtracks,
    };
    let mut q = objective_parts(r, &user_factors, &item_factors, cfg.lambda, &weights);
    let mut history = TrainingHistory {
        objective: vec![q],
        sweep_seconds: Vec::new(),
        converged: false,
    };
    for _ in 0..cfg.max_iters {
        let t0 = Instant::now();
        parallel_sweep_side(
            &mut item_factors,
            &user_factors,
            rt,
            &SideWeights::PerCounterpart(&weights),
            cfg,
            item_frozen,
            &ls,
            &mut sum_buf,
        );
        parallel_sweep_side(
            &mut user_factors,
            &item_factors,
            r,
            &SideWeights::OwnWeight(&weights),
            cfg,
            user_frozen,
            &ls,
            &mut sum_buf,
        );
        history.sweep_seconds.push(t0.elapsed().as_secs_f64());
        let q_new = objective_parts(r, &user_factors, &item_factors, cfg.lambda, &weights);
        history.objective.push(q_new);
        let decrease = q - q_new;
        q = q_new;
        if cfg.line_search && decrease <= cfg.tol * q.abs().max(1.0) {
            history.converged = true;
            break;
        }
    }
    TrainResult {
        model: FactorModel::new(user_factors, item_factors, cfg.bias),
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_core::fit;

    fn blocks(n: usize) -> Dataset {
        let mut pairs = Vec::new();
        for b in 0..4 {
            for u in 0..n {
                for i in 0..n {
                    pairs.push((b * n + u, b * n + i));
                }
            }
        }
        Dataset::from_matrix(CsrMatrix::from_pairs(4 * n, 4 * n, &pairs).unwrap())
    }

    fn cfg() -> OcularConfig {
        OcularConfig {
            k: 4,
            lambda: 0.1,
            max_iters: 15,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn parallel_is_bitwise_identical_to_sequential() {
        let r = blocks(5);
        let seq = fit(&r, &cfg());
        let par = fit_parallel(&r, &cfg(), None);
        assert_eq!(
            seq.model, par.model,
            "per-row parallelism must not change the math"
        );
        assert_eq!(seq.history.objective, par.history.objective);
    }

    #[test]
    fn parallel_identical_across_thread_counts() {
        let r = blocks(4);
        let one = fit_parallel(&r, &cfg(), Some(1));
        let four = fit_parallel(&r, &cfg(), Some(4));
        assert_eq!(one.model, four.model);
    }

    #[test]
    fn parallel_monotone_objective() {
        let r = blocks(5);
        let result = fit_parallel(&r, &cfg(), None);
        for w in result.history.objective.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn relative_weighting_supported() {
        let r = blocks(3);
        let c = OcularConfig {
            weighting: ocular_core::Weighting::Relative,
            ..cfg()
        };
        let seq = fit(&r, &c);
        let par = fit_parallel(&r, &c, None);
        assert_eq!(seq.model, par.model);
    }

    #[test]
    fn bias_extension_supported() {
        let r = blocks(3);
        let c = OcularConfig {
            bias: true,
            ..cfg()
        };
        let seq = fit(&r, &c);
        let par = fit_parallel(&r, &c, None);
        assert_eq!(seq.model, par.model);
    }
}
