//! The gradient kernel of Section VI-A, simulated.
//!
//! Equation (11) rewrites the item gradient as
//!
//! ```text
//! ∇Q(f_i) = C + 2λ f_i − Σ_{u: r_ui=1} f_u · α(⟨f_u, f_i⟩),   α(p) = 1/(1 − e^{−p})
//! ```
//!
//! with `C = Σ_u f_u` independent of the item. The GPU implementation
//! initialises every gradient to `C + 2λ f_i`, then launches **one thread
//! block per positive rating**; each block
//!
//! 1. computes the inner product by a parallel tree reduction in shared
//!    memory (simulated by [`block_dot`]),
//! 2. has one thread compute the scalar `α`,
//! 3. atomically adds `−α · f_u` into the item's gradient row.
//!
//! Steps run concurrently over all positive ratings via rayon, with
//! [`AtomicF64`] reproducing the semantics (and the reordering
//! nondeterminism) of CUDA's `atomicAdd`.

use ocular_core::model::P_MIN;
use ocular_linalg::{ops, Matrix};
use ocular_sparse::CsrMatrix;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// An `f64` with atomic add, built on `AtomicU64` compare-exchange —
/// the stand-in for CUDA `atomicAdd(double*)`.
#[derive(Debug)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates with an initial value.
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Atomic read.
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Atomic `+= v` via a CAS loop.
    pub fn fetch_add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Simulated block-level reduction: partial sums over `warp`-sized chunks
/// (each chunk standing in for one warp's coalesced reads), then a final
/// tree fold — numerically equivalent to the shared-memory reduction of
/// [Sanders & Kandrot] the paper follows.
///
/// The implementation lives in [`ocular_linalg::ops::block_dot`] so
/// training and serving share one blocked kernel; this is a re-export.
pub use ocular_linalg::ops::block_dot;

/// `α(p) = 1/(1 − e^{−p})`, clamped like the CPU path.
#[inline]
pub fn alpha(p: f64) -> f64 {
    1.0 / (-(-p.max(P_MIN)).exp_m1())
}

/// Computes the gradients of **all** item factors in one kernel launch:
/// one logical thread block per positive rating, atomic accumulation.
/// Returns an `n_items × k` matrix.
///
/// `r` is the user×item training matrix; `lambda` the regularizer. Matches
/// the sequential [`item_gradients_sequential`] up to floating-point
/// reassociation from atomic ordering.
pub fn item_gradients_parallel(
    r: &CsrMatrix,
    user_factors: &Matrix,
    item_factors: &Matrix,
    lambda: f64,
    warp: usize,
) -> Matrix {
    let k = user_factors.cols();
    let n_items = item_factors.rows();
    // C = Σ_u f_u, the item-independent constant of Eq. (11)
    let c = user_factors.column_sums();
    // initialise grad_i = C + 2λ f_i
    let mut grads: Vec<AtomicF64> = Vec::with_capacity(n_items * k);
    for i in 0..n_items {
        let fi = item_factors.row(i);
        for d in 0..k {
            grads.push(AtomicF64::new(c[d] + 2.0 * lambda * fi[d]));
        }
    }
    let grads = grads;
    // one thread block per positive rating
    let ratings: Vec<(u32, u32)> = r.iter_nnz().map(|(u, i)| (u as u32, i as u32)).collect();
    ratings.par_iter().for_each(|&(u, i)| {
        let fu = user_factors.row(u as usize);
        let fi = item_factors.row(i as usize);
        let p = block_dot(fu, fi, warp);
        let a = alpha(p);
        let base = i as usize * k;
        for d in 0..k {
            grads[base + d].fetch_add(-a * fu[d]);
        }
    });
    Matrix::from_vec(n_items, k, grads.iter().map(AtomicF64::load).collect())
}

/// Reference sequential implementation of the same gradients (the paper's
/// "CPU implementation"), for validation and the Figure 8 baseline.
pub fn item_gradients_sequential(
    r: &CsrMatrix,
    user_factors: &Matrix,
    item_factors: &Matrix,
    lambda: f64,
) -> Matrix {
    let k = user_factors.cols();
    let n_items = item_factors.rows();
    let c = user_factors.column_sums();
    let mut grads = Matrix::zeros(n_items, k);
    for i in 0..n_items {
        let fi = item_factors.row(i);
        let row = grads.row_mut(i);
        for d in 0..k {
            row[d] = c[d] + 2.0 * lambda * fi[d];
        }
    }
    for (u, i) in r.iter_nnz() {
        let fu = user_factors.row(u);
        let p = ops::dot(fu, item_factors.row(i));
        let a = alpha(p);
        let row = grads.row_mut(i);
        for d in 0..k {
            row[d] -= a * fu[d];
        }
    }
    grads
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_setup(seed: u64) -> (CsrMatrix, Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (nu, ni, k) = (40, 30, 5);
        let mut pairs = Vec::new();
        for u in 0..nu {
            for i in 0..ni {
                if rng.gen::<f64>() < 0.1 {
                    pairs.push((u, i));
                }
            }
        }
        let r = CsrMatrix::from_pairs(nu, ni, &pairs).unwrap();
        let mut uf = Matrix::zeros(nu, k);
        let mut itf = Matrix::zeros(ni, k);
        for v in uf.as_mut_slice().iter_mut().chain(itf.as_mut_slice()) {
            *v = rng.gen::<f64>();
        }
        (r, uf, itf)
    }

    #[test]
    fn atomic_f64_accumulates_concurrently() {
        let acc = AtomicF64::new(0.0);
        (0..1000usize)
            .into_par_iter()
            .for_each(|_| acc.fetch_add(0.5));
        assert!((acc.load() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn block_dot_matches_dot() {
        let a: Vec<f64> = (0..37).map(|i| (i as f64) * 0.3 - 2.0).collect();
        let b: Vec<f64> = (0..37).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        for warp in [1, 4, 32, 64] {
            assert!(
                (block_dot(&a, &b, warp) - ops::dot(&a, &b)).abs() < 1e-9,
                "warp {warp}"
            );
        }
        assert_eq!(block_dot(&[], &[], 32), 0.0);
    }

    #[test]
    fn parallel_matches_sequential_gradients() {
        let (r, uf, itf) = random_setup(3);
        let par = item_gradients_parallel(&r, &uf, &itf, 0.5, 32);
        let seq = item_gradients_sequential(&r, &uf, &itf, 0.5);
        assert!(
            par.max_abs_diff(&seq) < 1e-9,
            "max diff {}",
            par.max_abs_diff(&seq)
        );
    }

    #[test]
    fn gradients_match_core_local_problem() {
        // cross-validate the kernel against ocular-core's LocalProblem
        use ocular_core::gradient::{negative_sum, LocalProblem, PosWeights};
        let (r, uf, itf) = random_setup(5);
        let lambda = 0.3;
        let kernel = item_gradients_sequential(&r, &uf, &itf, lambda);
        let rt = r.transpose();
        let sum = uf.column_sums();
        let weights = vec![1.0; r.n_rows()];
        let mut negsum = vec![0.0; uf.cols()];
        let mut grad = vec![0.0; uf.cols()];
        for i in 0..r.n_cols() {
            negative_sum(&uf, &sum, rt.row(i), &mut negsum);
            let problem = LocalProblem {
                positives: rt.row(i),
                other: &uf,
                weights: PosWeights::PerEntity(&weights),
                negsum: &negsum,
                lambda,
                fixed_dim: None,
            };
            problem.gradient(itf.row(i), &mut grad);
            for d in 0..uf.cols() {
                assert!(
                    (grad[d] - kernel.row(i)[d]).abs() < 1e-8,
                    "item {i} dim {d}: {} vs {}",
                    grad[d],
                    kernel.row(i)[d]
                );
            }
        }
    }

    #[test]
    fn alpha_is_eq11_coefficient() {
        // α(p) = 1 + e^{−p}/(1−e^{−p}) — the identity used to derive Eq. (11)
        for &p in &[0.1f64, 0.8, 2.5] {
            let direct = 1.0 + (-p).exp() / (1.0 - (-p).exp());
            assert!((alpha(p) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_matrix_gradient_is_constant_part() {
        let (_, uf, itf) = random_setup(7);
        let empty = CsrMatrix::empty(uf.rows(), itf.rows());
        let g = item_gradients_parallel(&empty, &uf, &itf, 0.25, 32);
        let c = uf.column_sums();
        for i in 0..itf.rows() {
            for d in 0..uf.cols() {
                let expected = c[d] + 0.5 * itf.row(i)[d];
                assert!((g.row(i)[d] - expected).abs() < 1e-12);
            }
        }
    }
}
