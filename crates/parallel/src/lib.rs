//! # ocular-parallel
//!
//! A simulated GPU execution engine for OCuLaR, reproducing Section VI of
//! the paper ("Using massively parallel processors") without the hardware.
//!
//! ## What the paper did, and what this crate does
//!
//! The paper maps training onto CUDA: the training data is copied to the
//! device once; the gradient kernel launches *one thread block per positive
//! rating*, each block computing `⟨f_u, f_i⟩` by a shared-memory reduction
//! and atomically accumulating `−α(p)·f_u` into the item gradient; a
//! GeForce TITAN X reaches the same training likelihood 57× faster than the
//! CPU implementation (Figure 8).
//!
//! Without a GPU we reproduce the *decomposition*, not the silicon:
//!
//! * [`kernel`] — the per-positive-rating gradient kernel with block-style
//!   reduction and atomic accumulation ([`kernel::AtomicF64`] stands in for
//!   CUDA `atomicAdd(double)`), executed by a rayon thread pool;
//! * [`trainer`] — a data-parallel block-coordinate trainer whose
//!   half-sweeps update all items (then all users) concurrently. Because
//!   each factor row's subproblem reads only the *fixed* side, per-entity
//!   parallelism is exact: the result is bitwise identical to the
//!   sequential trainer, which the tests assert;
//! * [`memory`] — the paper's device-memory footprint model
//!   `O(max(nnz, n_u·K, n_i·K))`, including the Netflix/K=200 ≈ 2.7 GB
//!   worked example;
//! * [`speedup`] — Figure 8 instrumentation: likelihood-vs-wall-clock
//!   traces and the speedup factor at a target accuracy.
//!
//! The measured speedup is bounded by host cores rather than 57×, but the
//! *shape* of Figure 8 — same final likelihood, parallel trace strictly
//! left of the sequential trace — is preserved, which is the claim the
//! substitution needs to support (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod memory;
pub mod pool;
pub mod speedup;
pub mod trainer;

pub use memory::MemoryModel;
pub use pool::WorkerPool;
pub use speedup::{speedup_at_threshold, TimedTrace};
pub use trainer::fit_parallel;

/// Runs `f` under an explicit rayon thread count, or on the ambient pool
/// when `threads` is `None`.
///
/// This is the one thread knob shared by every data-parallel entry point in
/// the workspace ([`fit_parallel`], `ocular-serve`'s batch path, the Figure 8
/// harness), so "1 thread vs N threads" comparisons always mean the same
/// thing.
///
/// # Panics
/// Panics if the dedicated pool cannot be built.
pub fn with_threads<R>(threads: Option<usize>, f: impl FnOnce() -> R) -> R {
    match threads {
        None => f(),
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("failed to build rayon pool")
            .install(f),
    }
}
