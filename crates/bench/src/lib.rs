//! # ocular-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation section, plus Criterion microbenches and ablations.
//!
//! | target | regenerates | run |
//! |---|---|---|
//! | `table1` | Table I (MAP@50 / recall@50, six methods, three datasets) | `cargo run -p ocular-bench --release --bin table1` |
//! | `figure2` | Fig. 2 (Modularity & BIGCLAM failure on the toy example) | `… --bin figure2` |
//! | `figure5` | Fig. 5 (recall@M and MAP@M curves, Movielens) | `… --bin figure5` |
//! | `figure6` | Fig. 6 (recall + co-cluster metrics across K, λ) | `… --bin figure6` |
//! | `figure7` | Fig. 7 (time/iteration vs dataset fraction and K) | `… --bin figure7` |
//! | `figure8` | Fig. 8 (likelihood-vs-time, sequential vs parallel) | `… --bin figure8` |
//! | `figure9` | Fig. 9 (recall@50 heatmap over the (K, λ) grid) | `… --bin figure9` |
//! | `ablations` | design-choice ablations called out in DESIGN.md | `… --bin ablations` |
//!
//! Every binary accepts `--scale small|medium|paper` (default `small`,
//! ≈10× below the paper's dataset sizes so the full suite runs on a laptop
//! in minutes), `--seed N` and `--instances N`. Absolute numbers differ
//! from the paper (synthetic stand-in data; see DESIGN.md §2) but the
//! qualitative shape — who wins, scaling slopes, where the heatmap peaks —
//! is the reproduction target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod harness;
pub mod persistence;
pub mod table;

pub use args::Args;
pub use harness::{evaluate_recommender, OcularRecommender};
pub use table::TextTable;
