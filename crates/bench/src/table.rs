//! Plain-text table rendering for the experiment binaries (paper-style
//! aligned rows on stdout, plus CSV serialisation).

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given header.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate().take(cols) {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[c] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = self.header.iter().map(esc).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["dataset", "metric", "value"]);
        t.row(["Movielens", "recall@50", "0.4021"]);
        t.row(["B2B-DB", "MAP@50", "0.18"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("dataset"));
        assert!(lines[2].contains("0.4021"));
        // columns aligned: "metric" column starts at the same offset
        let off = lines[0].find("metric").unwrap();
        assert_eq!(lines[2].find("recall@50"), Some(off));
        assert_eq!(lines[3].find("MAP@50"), Some(off));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("only"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new(["name", "note"]);
        t.row(["x", "a,b"]);
        t.row(["y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }
}
