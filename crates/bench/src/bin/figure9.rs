//! **Figure 9** — recall@50 heatmap over the (K, λ) hyper-parameter grid
//! for the B2B dataset.
//!
//! Paper setup: 625 parameter pairs fanned out with Spark over 8 GPU
//! machines in ~8 minutes (vs >2 days on one CPU). Here the same
//! embarrassingly parallel fan-out runs on rayon
//! ([`ocular_eval::gridsearch`]); the default grid is 5×5 to stay
//! laptop-friendly — pass `--grid 25` for the paper's resolution.
//!
//! Paper result: the optimal pairs lie *outside* the coarse grid used for
//! the CPU-only Table I experiments, i.e. a finer search buys extra recall.
//!
//! Usage: `cargo run -p ocular-bench --release --bin figure9 --
//!   [--scale …] [--seed S] [--grid 5] [--m 50] [--csv]`

use ocular_bench::harness::OcularRecommender;
use ocular_bench::Args;
use ocular_core::OcularConfig;
use ocular_datasets::profiles;
use ocular_eval::gridsearch::grid_search;
use ocular_sparse::{Split, SplitConfig};

fn main() {
    let args = Args::parse();
    let seed = args.seed();
    let m = args.get("m", 50usize);
    let grid = args.get("grid", 5usize).max(2);
    let data = profiles::b2b_like(args.scale(), seed);
    let split = Split::new(
        &data.matrix,
        &SplitConfig {
            seed,
            ..Default::default()
        },
    );
    let base_k = data.truth.k();

    // K axis: geometric range around the planted count (the paper sweeps
    // 80..1000 around its optimum); λ axis: 0 plus a geometric ladder
    let ks: Vec<usize> = (0..grid)
        .map(|i| {
            let lo = (base_k / 2).max(2) as f64;
            let hi = (base_k * 4) as f64;
            (lo * (hi / lo).powf(i as f64 / (grid - 1) as f64)).round() as usize
        })
        .collect();
    // λ axis: 0 plus a geometric ladder spanning under- to over-regularised
    // (the probes place the optimum for the B2B stand-in around λ ≈ 2–10)
    let lambdas: Vec<f64> = (0..grid)
        .map(|i| {
            if i == 0 {
                0.0
            } else {
                0.5 * 64.0f64.powf((i - 1) as f64 / (grid - 2).max(1) as f64)
            }
        })
        .collect();

    println!(
        "Figure 9 — recall@{m} over a {}×{} (K, λ) grid (B2B-like, scale {:?}, {} cells in parallel)\n",
        ks.len(),
        lambdas.len(),
        args.scale(),
        ks.len() * lambdas.len()
    );

    let t0 = std::time::Instant::now();
    let result = grid_search(&ks, &lambdas, &split.train, &split.test, m, |k, lambda| {
        let cfg = OcularConfig {
            k,
            lambda,
            max_iters: 40,
            seed,
            ..Default::default()
        };
        Box::new(OcularRecommender::fit_absolute(&split.train, &cfg))
    });
    let elapsed = t0.elapsed().as_secs_f64();

    println!("{}", result.render_heatmap());
    println!(
        "grid evaluated in {elapsed:.1} s on {} threads (paper: 8 min on 8 GPUs vs >2 days on 1 CPU)",
        rayon::current_num_threads()
    );
    if args.flag("csv") {
        println!("{}", result.to_csv());
    }
}
