//! **Figure 2** — output of non-overlapping (Modularity) and overlapping
//! (BIGCLAM) community detection on the introductory example, next to
//! OCuLaR's own co-clusters.
//!
//! Paper result: *"both fail to recover the correct community structure,
//! and by recovering incorrect 'community' boundaries they would have
//! identified only one (1) of the three (3) candidate recommendations"* —
//! OCuLaR identifies all three (Figure 3).
//!
//! Usage: `cargo run -p ocular-bench --release --bin figure2`

use ocular_bench::TextTable;
use ocular_community::graph::Graph;
use ocular_community::{greedy_modularity, louvain::louvain, Bigclam, BigclamConfig};
use ocular_core::{default_threshold, extract_coclusters, fit, OcularConfig};
use ocular_datasets::figure1::{figure1, render_ascii, HELD_OUT, N_USERS};
use ocular_datasets::recovery::{best_match_f1, held_out_coverage, RecoveredCluster};

fn from_communities(cs: &[ocular_community::Community]) -> Vec<RecoveredCluster> {
    cs.iter()
        .map(|c| {
            let (users, items) = c.split_bipartite(N_USERS);
            RecoveredCluster::new(users, items)
        })
        .collect()
}

fn describe(clusters: &[RecoveredCluster]) -> String {
    clusters
        .iter()
        .map(|c| format!("users {:?} × items {:?}", c.users, c.items))
        .collect::<Vec<_>>()
        .join("; ")
}

fn main() {
    let f = figure1();
    println!("The introductory example (■ positive, ○ held-out candidate):\n");
    println!("{}", render_ascii(&f.matrix, &HELD_OUT));

    let g = Graph::from_bipartite(&f.matrix);

    // OCuLaR
    let result = fit(
        &f.matrix,
        &OcularConfig {
            k: 3,
            lambda: 0.05,
            max_iters: 400,
            tol: 1e-7,
            seed: 42,
            ..Default::default()
        },
    );
    let ocular: Vec<RecoveredCluster> = extract_coclusters(&result.model, default_threshold())
        .into_iter()
        .map(|c| RecoveredCluster::new(c.users, c.items))
        .collect();

    // Modularity (greedy CNM) and Louvain
    let (mod_comms, q_mod) = greedy_modularity(&g);
    let modularity = from_communities(&mod_comms);
    let (louv_comms, q_louv) = louvain(&g);
    let louv = from_communities(&louv_comms);

    // BIGCLAM
    let big = Bigclam::fit(
        &g,
        &BigclamConfig {
            k: 3,
            seed: 7,
            ..Default::default()
        },
    );
    let bigclam = from_communities(&big.communities(Bigclam::default_threshold(&g)));

    // OCuLaR yields a *ranked list*, so its candidates-found column counts
    // held-out cells surfaced in each user's top-2 recommendations; the
    // community methods yield only an assignment (the paper's point:
    // "they yield an assignment of users/items to communities, but not a
    // ranked list of recommendations"), so for them a candidate counts as
    // found if a recovered community contains both endpoints.
    let ocular_found = HELD_OUT
        .iter()
        .filter(|&&(u, i)| {
            ocular_core::recommend_top_m(&result.model, &f.matrix, u, 2)
                .iter()
                .any(|rec| rec.item == i)
        })
        .count();

    let mut table = TextTable::new(["method", "clusters", "best-match F1", "candidates found"]);
    let f1_ocular = best_match_f1(&f.truth, &ocular);
    table.row([
        "OCuLaR".to_string(),
        ocular.len().to_string(),
        format!("{f1_ocular:.3}"),
        format!("{ocular_found} / {} (ranked)", HELD_OUT.len()),
    ]);
    for (name, clusters) in [
        ("Modularity", &modularity),
        ("Louvain", &louv),
        ("BIGCLAM", &bigclam),
    ] {
        let f1 = best_match_f1(&f.truth, clusters);
        let found = (held_out_coverage(&HELD_OUT, clusters) * HELD_OUT.len() as f64).round();
        table.row([
            name.to_string(),
            clusters.len().to_string(),
            format!("{f1:.3}"),
            format!("{found:.0} / {}", HELD_OUT.len()),
        ]);
    }
    println!("{}", table.render());
    println!("modularity Q: greedy {q_mod:.3}, louvain {q_louv:.3}\n");

    for (name, clusters) in [
        ("OCuLaR", &ocular),
        ("Modularity", &modularity),
        ("BIGCLAM", &bigclam),
    ] {
        println!("{name}: {}", describe(clusters));
    }
    println!("\npaper reference: Modularity and BIGCLAM both fail to recover the");
    println!("overlapping structure and identify only 1 of the 3 candidates.");
}
