//! **Figure 6** — recall and co-cluster metrics for varying K and λ.
//!
//! Paper result (Section VII-C, Movielens): *"either too little (λ = 0) or
//! too much regularization (λ = 100) can hurt the recommendation
//! accuracy"*; growing K shrinks the average co-cluster while each user's
//! membership count stays moderate; co-cluster densities sit far above the
//! global matrix density.
//!
//! Usage: `cargo run -p ocular-bench --release --bin figure6 --
//!   [--scale …] [--seed S] [--m 50] [--csv]`
//!
//! λ values follow the paper's panels {0, 30, 100}, rescaled by `--lambda-unit`
//! (default 0.01 — the synthetic stand-in is ~10× smaller than Movielens-1M,
//! so the paper's absolute λ range over-regularises it).

use ocular_bench::harness::evaluate_recommender;
use ocular_bench::harness::OcularRecommender;
use ocular_bench::{Args, TextTable};
use ocular_core::coclusters::{cocluster_stats, extract_coclusters_relative};
use ocular_core::OcularConfig;
use ocular_datasets::profiles;
use ocular_sparse::{Split, SplitConfig};

fn main() {
    let args = Args::parse();
    let seed = args.seed();
    let m = args.get("m", 50usize);
    let lambda_unit = args.get("lambda-unit", 0.01f64);
    let data = profiles::movielens_like(args.scale(), seed);
    let split = Split::new(
        &data.matrix,
        &SplitConfig {
            seed,
            ..Default::default()
        },
    );

    let base_k = data.truth.k();
    let ks: Vec<usize> = [base_k / 2, base_k, base_k * 2, base_k * 4]
        .into_iter()
        .filter(|&k| k >= 2)
        .collect();
    let lambdas: Vec<f64> = vec![0.0, 30.0 * lambda_unit, 100.0 * lambda_unit];

    println!(
        "Figure 6 — recall@{m} and co-cluster metrics across K × λ (Movielens-like, scale {:?})",
        args.scale()
    );
    println!("matrix density: {:.4}\n", data.matrix.density());

    let mut table = TextTable::new([
        "K",
        "lambda",
        "recall",
        "co-clusters",
        "users/cluster",
        "items/cluster",
        "density",
        "memberships",
    ]);
    for &k in &ks {
        for &lambda in &lambdas {
            let cfg = OcularConfig {
                k,
                lambda,
                max_iters: 60,
                seed,
                ..Default::default()
            };
            let rec = OcularRecommender::fit_absolute(&split.train, &cfg);
            let report = evaluate_recommender(&rec, &split.train, &split.test, m);
            // relative membership threshold: regularised magnitudes split
            // asymmetrically between the user and item side, so absolute
            // thresholds under-count the large side
            let clusters = extract_coclusters_relative(&rec.model, 0.3);
            let stats = cocluster_stats(&clusters, &split.train);
            table.row([
                k.to_string(),
                format!("{lambda}"),
                format!("{:.4}", report.recall),
                stats.count.to_string(),
                format!("{:.1}", stats.mean_users),
                format!("{:.1}", stats.mean_items),
                format!("{:.3}", stats.mean_density),
                format!("{:.2}", stats.mean_user_memberships),
            ]);
            eprintln!("[figure6] K={k} λ={lambda} done");
        }
    }
    println!("{}", table.render());
    if args.flag("csv") {
        println!("{}", table.to_csv());
    }
    println!("expected shape (paper): recall peaks at moderate λ; λ=0 and the");
    println!("largest λ hurt; co-cluster density ≫ matrix density; users/items");
    println!("per cluster shrink as K grows.");
}
