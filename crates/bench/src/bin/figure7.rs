//! **Figure 7** — running time per iteration on increasing fractions of
//! the (synthetic) Netflix dataset, for K ∈ {10, 50, 100}.
//!
//! Paper result: *"the training time is indeed linear in the number of
//! positive examples and linear in the number of co-clusters K"*. This
//! binary measures seconds per sweep at each (fraction, K), prints the
//! series, and fits a least-squares line per K reporting R² — linearity is
//! the claim, so R² ≈ 1 is the reproduction target.
//!
//! Usage: `cargo run -p ocular-bench --release --bin figure7 --
//!   [--scale …] [--seed S] [--sweeps 3] [--csv]`

use ocular_bench::{Args, TextTable};
use ocular_core::{fit, OcularConfig};
use ocular_datasets::profiles;
use ocular_sparse::sample::sample_nnz_fraction;

/// Least-squares fit `y = a + b·x`; returns `(a, b, r²)`.
fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let b = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    let a = my - b * mx;
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (a + b * x);
            e * e
        })
        .sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    (a, b, r2)
}

fn main() {
    let args = Args::parse();
    let seed = args.seed();
    let sweeps = args.get("sweeps", 3usize).max(1);
    let data = profiles::netflix_like(args.scale(), seed);
    let fractions = [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0];
    let ks = [10usize, 50, 100];

    println!(
        "Figure 7 — seconds per sweep vs fraction of the Netflix-like dataset ({} positives at fraction 1.0, scale {:?})\n",
        data.matrix.nnz(),
        args.scale()
    );

    let mut table = TextTable::new(
        std::iter::once("fraction".to_string())
            .chain(std::iter::once("nnz".to_string()))
            .chain(ks.iter().map(|k| format!("K={k} (s/it)"))),
    );
    let mut per_k_points: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); ks.len()];
    for &frac in &fractions {
        let sub =
            ocular_sparse::Dataset::from_matrix(sample_nnz_fraction(&data.matrix, frac, seed));
        let mut cells = vec![format!("{frac}"), sub.nnz().to_string()];
        for (ki, &k) in ks.iter().enumerate() {
            let cfg = OcularConfig {
                k,
                lambda: 0.5,
                max_iters: sweeps,
                tol: 0.0, // never early-stop: we are timing sweeps
                seed,
                ..Default::default()
            };
            let result = fit(&sub, &cfg);
            let s_per_it = result.history.mean_sweep_seconds();
            per_k_points[ki].0.push(sub.nnz() as f64);
            per_k_points[ki].1.push(s_per_it);
            cells.push(format!("{s_per_it:.4}"));
        }
        eprintln!("[figure7] fraction {frac} done");
        table.row(cells);
    }
    println!("{}", table.render());

    println!("linearity in nnz (per K):");
    let mut slopes = Vec::new();
    for (ki, &k) in ks.iter().enumerate() {
        let (a, b, r2) = linear_fit(&per_k_points[ki].0, &per_k_points[ki].1);
        println!("  K={k:>3}: time ≈ {a:.4} + {b:.3e}·nnz, R² = {r2:.4}");
        slopes.push(b);
    }
    // the paper's own Figure 7 shows sublinear slope ratios (≈3.3× from
    // K=10→50 and ≈2.7× from 50→100 at the full dataset) because fixed
    // per-sweep costs and vectorisation don't scale with K; compare shape,
    // not the nominal 5×/2×
    println!(
        "linearity in K: slope(K=50)/slope(K=10) = {:.2}, slope(K=100)/slope(K=50) = {:.2} (paper's measured ratios ≈3.3 and ≈2.7)",
        slopes[1] / slopes[0].max(1e-12),
        slopes[2] / slopes[1].max(1e-12)
    );

    if args.flag("csv") {
        println!("{}", table.to_csv());
    }
}
