//! End-to-end network serving benchmark, emitting the `BENCH_net.json`
//! artifact the CI bench-regression gate consumes (Linux only — the TCP
//! front-end is epoll-based).
//!
//! Trains OCuLaR on the powerlaw profile, starts the real TCP server
//! in-process on an ephemeral port, then drives it with the closed-loop
//! load generator over keep-alive connections. The reported throughput
//! and round-trip percentiles therefore cover the whole request path:
//! socket read → HTTP parse → protocol decode → admission → batched
//! engine serve → protocol encode → socket write.
//!
//! Flags: `--scale`, `--seed`, `--seconds 3`, `--connections 4`,
//! `--m 10`, `--queue-cap 1024`, `--out BENCH_net.json`.

#[cfg(target_os = "linux")]
fn main() {
    use ocular_bench::Args;
    use ocular_core::{fit, OcularConfig};
    use ocular_datasets::profiles;
    use ocular_serve::json::{obj, Json};
    use ocular_serve::net::loadgen::{run, LoadgenConfig};
    use ocular_serve::net::{Server, ServerConfig};
    use ocular_serve::{CandidatePolicy, EngineBuilder, ServeConfig, SwapEngine};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Duration;

    let args = Args::parse();
    let seed = args.seed();
    let m = args.get("m", 10usize);
    let seconds = args.get("seconds", 3.0f64).max(0.5);
    let connections = args.get("connections", 4usize).max(1);
    let queue_cap = args.get("queue-cap", 1024usize);
    let out_path = args.get("out", "BENCH_net.json".to_string());

    let data = profiles::b2b_like(args.scale(), seed);
    let r = data.matrix;
    let k = data.truth.k();
    let cfg = OcularConfig {
        k,
        lambda: 1.0,
        max_iters: 15,
        seed,
        ..Default::default()
    };
    let model = fit(&r, &cfg).model;
    let n_users = r.n_rows();
    let engine = Arc::new(SwapEngine::new(
        EngineBuilder::from_model(model)
            .dataset(r)
            .config(ServeConfig {
                default_m: m,
                candidates: CandidatePolicy::Clusters { min_candidates: m },
                foldin: cfg,
                ..Default::default()
            })
            .build()
            .expect("engine"),
    ));

    let server = Server::bind(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            queue_cap,
            ..Default::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn();
    let addr = server.addr().to_string();
    eprintln!("net_latency: serving {n_users} users on {addr}");

    let report = run(
        &addr,
        &LoadgenConfig {
            connections,
            duration: Duration::from_secs_f64(seconds),
            m,
            users: n_users,
            path: "/recommend".into(),
        },
    )
    .expect("load run");
    let stats = Arc::clone(server.stats());
    server.shutdown().expect("clean shutdown");

    assert!(report.requests > 0, "no responses received");
    assert_eq!(report.errors, 0, "transport or protocol errors under load");
    eprintln!(
        "net_latency: {:.0} req/s over {} connections  p50={:.0}µs p90={:.0}µs p99={:.0}µs max={:.0}µs (ok={} shed={})",
        report.throughput_rps,
        connections,
        report.p50_us,
        report.p90_us,
        report.p99_us,
        report.max_us,
        report.ok,
        report.shed,
    );

    let served = stats.served.load(Ordering::Relaxed);
    let doc = obj(vec![
        ("bench", Json::Str("net".into())),
        ("profile", Json::Str("powerlaw-b2b".into())),
        ("connections", Json::Num(connections as f64)),
        ("m", Json::Num(m as f64)),
        ("seconds", Json::Num(report.seconds)),
        ("requests", Json::Int(report.requests)),
        ("ok", Json::Int(report.ok)),
        ("shed", Json::Int(report.shed)),
        ("errors", Json::Int(report.errors)),
        ("throughput_rps", Json::Num(report.throughput_rps)),
        ("p50_us", Json::Num(report.p50_us)),
        ("p90_us", Json::Num(report.p90_us)),
        ("p99_us", Json::Num(report.p99_us)),
        ("max_us", Json::Num(report.max_us)),
        (
            "server",
            obj(vec![
                ("served", Json::Int(served)),
                (
                    "accepted",
                    Json::Int(stats.accepted.load(Ordering::Relaxed)),
                ),
                (
                    "bad_requests",
                    Json::Int(stats.bad_requests.load(Ordering::Relaxed)),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write bench artifact");
    eprintln!("artifact → {out_path}");
}

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("net_latency: the TCP serving tier requires Linux (epoll); skipping");
}
