//! Scratch probe for hyper-parameter sensitivity on one profile (not part
//! of the documented experiment suite; used to calibrate defaults).
//!
//! Beyond the sweep it runs two data-backbone guards:
//!
//! * a fixed-work training run whose **per-sweep** wall-clock must stay
//!   flat (last sweep ≤ 1.2× the fastest sweep) — the regression guard
//!   for per-sweep allocation churn, which once crept 0.138 s → 0.226 s
//!   over a run;
//! * a streaming-**ingestion** timing (edge-list text → [`Dataset`] via
//!   the chunked reader).
//!
//! With `--bench-out PATH` it additionally writes a `BENCH_train.json`
//! artifact (fastest OCuLaR fit wall-clock over the sweep, per-sweep
//! times, ingestion seconds) for the CI bench-regression gate.

use ocular_baselines::{ItemKnn, KnnConfig, UserKnn};
use ocular_bench::harness::{evaluate_recommender, OcularRecommender};
use ocular_bench::Args;
use ocular_core::OcularConfig;
use ocular_datasets::profiles;
use ocular_eval::protocol::evaluate;
use ocular_serve::json::{obj, Json};
use ocular_sparse::io::{append_edge_list_str, read_edge_list_str, write_edge_list};
use ocular_sparse::{Dataset, Split, SplitConfig};

fn main() {
    let args = Args::parse();
    let seed = args.seed();
    let which = args.get("data", "b2b".to_string());
    let data = match which.as_str() {
        "ml" => profiles::movielens_like(args.scale(), seed),
        "cu" => profiles::citeulike_like(args.scale(), seed),
        _ => profiles::b2b_like(args.scale(), seed),
    };
    let split = Split::new(
        &data.matrix,
        &SplitConfig {
            seed,
            ..Default::default()
        },
    );
    let kh = data.truth.k();
    println!(
        "profile {which}: k_hint={kh}, nnz={}, density={:.4}, users/cluster≈{:.0}, items/cluster≈{:.0}",
        data.matrix.nnz(),
        data.matrix.density(),
        data.truth.user_sets.iter().map(|s| s.len()).sum::<usize>() as f64 / kh as f64,
        data.truth.item_sets.iter().map(|s| s.len()).sum::<usize>() as f64 / kh as f64,
    );

    // oracle: knows the planted clusters and global popularity
    let item_deg: Vec<f64> = data
        .matrix
        .col_degrees()
        .iter()
        .map(|&d| d as f64)
        .collect();
    let max_deg = item_deg.iter().cloned().fold(1.0, f64::max);
    let truth = &data.truth;
    let oracle_fn = |u: usize, buf: &mut Vec<f64>| {
        for (i, b) in buf.iter_mut().enumerate() {
            let mut s = 0.0;
            for c in 0..truth.k() {
                if truth.user_sets[c].binary_search(&u).is_ok()
                    && truth.item_sets[c].binary_search(&i).is_ok()
                {
                    s += 1.0 + item_deg[i] / max_deg;
                }
            }
            *b = s + 0.01 * item_deg[i] / max_deg;
        }
    };
    let oracle = ocular_api::FnScorer::new(
        "oracle",
        split.train.n_rows(),
        split.train.n_cols(),
        oracle_fn,
    );
    let r = evaluate(&oracle, &split.train, &split.test, 50);
    println!(
        "ORACLE (planted truth): recall@50={:.4} MAP@50={:.4}",
        r.recall, r.map
    );

    for knn in [20, 50, 150, 400] {
        let m = ItemKnn::fit(&split.train, &KnnConfig { k: knn });
        let r = evaluate_recommender(&m, &split.train, &split.test, 50);
        println!(
            "item-kNN k={knn:<4} recall@50={:.4} MAP@50={:.4}",
            r.recall, r.map
        );
        let m = UserKnn::fit(&split.train, &KnnConfig { k: knn });
        let r = evaluate_recommender(&m, &split.train, &split.test, 50);
        println!(
            "user-kNN k={knn:<4} recall@50={:.4} MAP@50={:.4}",
            r.recall, r.map
        );
    }

    let mut fit_seconds: Vec<f64> = Vec::new();
    for k in [kh, kh * 2] {
        for lambda in [1.0, 2.0, 5.0, 10.0] {
            let cfg = OcularConfig {
                k,
                lambda,
                max_iters: 100,
                tol: 1e-5,
                seed,
                ..Default::default()
            };
            let t0 = std::time::Instant::now();
            let rec = OcularRecommender::fit_absolute(&split.train, &cfg);
            let elapsed = t0.elapsed().as_secs_f64();
            fit_seconds.push(elapsed);
            let r = evaluate_recommender(&rec, &split.train, &split.test, 50);
            println!(
                "OCuLaR k={k:>3} λ={lambda:<5} recall@50={:.4} MAP@50={:.4}  ({elapsed:.1}s)",
                r.recall, r.map,
            );
        }
    }

    // per-sweep flatness guard: fixed K, tol 0 and no convergence break
    // below the iteration budget, so every sweep does comparable work —
    // a monotone per-sweep slowdown means state is leaking across sweeps
    // (the seed-era symptom was allocation churn: 0.138 s → 0.226 s)
    let flat_cfg = OcularConfig {
        k: kh * 2,
        lambda: 2.0,
        max_iters: 12,
        tol: 0.0,
        seed,
        ..Default::default()
    };
    let flat_fit = ocular_core::fit(&split.train, &flat_cfg);
    let per_sweep = flat_fit.history.sweep_seconds;
    let min_sweep = per_sweep.iter().cloned().fold(f64::INFINITY, f64::min);
    let last_sweep = *per_sweep.last().expect("at least one sweep");
    let flatness = last_sweep / min_sweep;
    println!(
        "per-sweep seconds (K={}): min={min_sweep:.4} last={last_sweep:.4} last/min={flatness:.2}",
        flat_cfg.k
    );
    assert!(
        flatness <= 1.2,
        "per-sweep time is not flat: last sweep {last_sweep:.4}s > 1.2× min sweep \
         {min_sweep:.4}s — per-sweep state is leaking (allocation churn?)"
    );

    // streaming-ingestion timing: render the training interactions as an
    // edge list and stream them back through the chunked reader
    let mut edge_text: Vec<u8> = Vec::new();
    write_edge_list(&mut edge_text, &data.matrix).expect("render edge list");
    let edge_text = String::from_utf8(edge_text).expect("ascii edge list");
    let t0 = std::time::Instant::now();
    let ingested: Dataset = read_edge_list_str(&edge_text, "\t", None)
        .expect("re-ingest the rendered edge list")
        .into_dataset();
    let ingest_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(
        ingested.nnz(),
        data.matrix.nnz(),
        "ingestion must be lossless"
    );
    println!(
        "streaming ingestion: {} records in {ingest_seconds:.4}s",
        ingested.nnz()
    );

    // delta-append timing: split the same log ~90/10, ingest the base,
    // then merge the tail through the delta path. Live refresh rests on
    // this being one merge pass over the existing positives — never a
    // full re-ingest of the grown log — so the merged dataset must equal
    // the full ingest bit-for-bit and the append must come in below the
    // full-ingest wall-clock it replaces (same-run, machine-independent).
    let lines: Vec<&str> = edge_text.lines().collect();
    let cut = lines.len() - lines.len() / 10;
    let base_text: String = lines[..cut].iter().map(|l| format!("{l}\n")).collect();
    let delta_text: String = lines[cut..].iter().map(|l| format!("{l}\n")).collect();
    let base: Dataset = read_edge_list_str(&base_text, "\t", None)
        .expect("ingest the base log")
        .into_dataset();
    let t0 = std::time::Instant::now();
    let merged = append_edge_list_str(&base, &delta_text, "\t", None).expect("delta merge");
    let delta_append_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(
        merged, ingested,
        "delta merge must equal a full re-ingest of the concatenated log"
    );
    println!(
        "delta append: {} records merged in {delta_append_seconds:.4}s \
         (full re-ingest: {ingest_seconds:.4}s)",
        lines.len() - cut
    );
    assert!(
        delta_append_seconds <= ingest_seconds * 1.25 + 0.01,
        "appending a 10% delta took {delta_append_seconds:.4}s — not meaningfully cheaper \
         than the {ingest_seconds:.4}s full re-ingest it is supposed to avoid"
    );

    // snapshot persistence: text parse vs v3 binary mmap load on the
    // model the flatness run just fitted
    let snap = ocular_serve::AnySnapshot::Ocular(ocular_serve::Snapshot::build(
        flat_fit.model,
        &ocular_serve::IndexConfig::default(),
    ));
    let (load_text_s, load_binary_s) =
        ocular_bench::persistence::snapshot_load_seconds(&snap, data.matrix.ids(), 7);
    println!(
        "snapshot load: text {:.4}s vs binary(mmap) {:.5}s",
        load_text_s, load_binary_s
    );

    let bench_out = args.get("bench-out", String::new());
    if !bench_out.is_empty() {
        // the fastest fit is the least noisy proxy for "did training get
        // slower" — the sweep's slower configs vary with k and λ by design
        let fastest = fit_seconds.iter().cloned().fold(f64::INFINITY, f64::min);
        let doc = obj(vec![
            ("bench", Json::Str("train".into())),
            ("profile", Json::Str(which.clone())),
            ("n_users", Json::Num(split.train.n_rows() as f64)),
            ("n_items", Json::Num(split.train.n_cols() as f64)),
            ("nnz", Json::Num(split.train.nnz() as f64)),
            ("train_seconds", Json::Num(fastest)),
            (
                "sweep_seconds",
                Json::Arr(fit_seconds.iter().map(|&s| Json::Num(s)).collect()),
            ),
            (
                "per_sweep_seconds",
                Json::Arr(per_sweep.iter().map(|&s| Json::Num(s)).collect()),
            ),
            ("sweep_flatness", Json::Num(flatness)),
            ("ingest_seconds", Json::Num(ingest_seconds)),
            ("delta_append_seconds", Json::Num(delta_append_seconds)),
            (
                "snapshot_load",
                obj(vec![
                    ("text_seconds", Json::Num(load_text_s)),
                    ("binary_seconds", Json::Num(load_binary_s)),
                ]),
            ),
        ]);
        std::fs::write(&bench_out, format!("{doc}\n")).expect("write bench artifact");
        eprintln!("artifact → {bench_out}");
    }
}
