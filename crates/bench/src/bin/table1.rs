//! **Table I** — comparison of OCuLaR and R-OCuLaR with the baseline
//! one-class recommendation algorithms.
//!
//! Paper protocol (Section VII-B2): MAP@50 and recall@50 on Movielens,
//! CiteULike and B2B-DB, 75/25 train/test splits averaged over 10 problem
//! instances, and *"for each technique we test a number of hyper-parameters
//! and report only the best results"* — reproduced here by a small
//! per-method grid evaluated on the first instance, after which the chosen
//! configuration is applied to every instance.
//!
//! Paper result: *"Across all datasets the OCuLaR variants are either the
//! best or the second-best performing algorithm (together with wALS)"*,
//! and both beat the interpretable user-/item-based competitors.
//!
//! Usage: `cargo run -p ocular-bench --release --bin table1 --
//!   [--scale small|medium|paper] [--instances N] [--seed S] [--m M]
//!   [--no-tune] [--csv]`

use ocular_baselines::{
    BaselineConfigs, Bpr, BprConfig, ItemKnn, KnnConfig, Popularity, Recommender, UserKnn, Wals,
    WalsConfig,
};
use ocular_bench::harness::{evaluate_recommender, OcularRecommender};
use ocular_bench::{Args, TextTable};
use ocular_core::OcularConfig;
use ocular_datasets::profiles;
use ocular_eval::protocol::average_reports;
use ocular_sparse::{Dataset, Split, SplitConfig};

/// One method = a name plus a list of candidate configurations; each
/// candidate is a fit closure.
type FitFn = Box<dyn Fn(&Dataset, u64) -> Box<dyn Recommender>>;

struct Method {
    name: &'static str,
    candidates: Vec<FitFn>,
}

/// The model zoo with per-method hyper-parameter candidates. `k_hint` is
/// the planted co-cluster count of the profile (the paper grid-searches K
/// around the data's natural scale).
fn methods(k_hint: usize, tune: bool) -> Vec<Method> {
    let ks: Vec<usize> = if tune {
        vec![k_hint, k_hint * 3 / 2]
    } else {
        vec![k_hint]
    };
    let lambdas: Vec<f64> = if tune { vec![0.5, 2.0, 8.0] } else { vec![0.5] };
    let knn_ks: Vec<usize> = if tune { vec![20, 50, 150] } else { vec![50] };

    let ocular_cfgs = |weighting: ocular_core::Weighting| -> Vec<FitFn> {
        let mut v: Vec<FitFn> = Vec::new();
        for &k in &ks {
            for &lambda in &lambdas {
                v.push(Box::new(move |r, seed| {
                    let cfg = OcularConfig {
                        k,
                        lambda,
                        max_iters: 80,
                        seed,
                        weighting,
                        ..Default::default()
                    };
                    let rec = match weighting {
                        ocular_core::Weighting::Absolute => {
                            OcularRecommender::fit_absolute(r, &cfg)
                        }
                        ocular_core::Weighting::Relative => {
                            OcularRecommender::fit_relative(r, &cfg)
                        }
                    };
                    Box::new(rec) as Box<dyn Recommender>
                }));
            }
        }
        v
    };

    // each candidate varies one knob (k) on top of the zoo's seeded
    // per-model defaults, so the default hyper-parameters live in exactly
    // one place (`BaselineConfigs::seeded`)
    let mf_cfgs = |wals: bool| -> Vec<FitFn> {
        ks.iter()
            .map(|&k| -> FitFn {
                if wals {
                    Box::new(move |r, seed| {
                        let cfg = WalsConfig {
                            k,
                            ..BaselineConfigs::seeded(seed).wals
                        };
                        Box::new(Wals::fit(r, &cfg))
                    })
                } else {
                    Box::new(move |r, seed| {
                        let cfg = BprConfig {
                            k,
                            ..BaselineConfigs::seeded(seed).bpr
                        };
                        Box::new(Bpr::fit(r, &cfg))
                    })
                }
            })
            .collect()
    };

    vec![
        Method {
            name: "OCuLaR",
            candidates: ocular_cfgs(ocular_core::Weighting::Absolute),
        },
        Method {
            name: "R-OCuLaR",
            candidates: ocular_cfgs(ocular_core::Weighting::Relative),
        },
        Method {
            name: Wals::NAME,
            candidates: mf_cfgs(true),
        },
        Method {
            name: Bpr::NAME,
            candidates: mf_cfgs(false),
        },
        Method {
            name: UserKnn::NAME,
            candidates: knn_ks
                .iter()
                .map(|&k| -> FitFn {
                    Box::new(move |r, _| Box::new(UserKnn::fit(r, &KnnConfig { k })))
                })
                .collect(),
        },
        Method {
            name: ItemKnn::NAME,
            candidates: knn_ks
                .iter()
                .map(|&k| -> FitFn {
                    Box::new(move |r, _| Box::new(ItemKnn::fit(r, &KnnConfig { k })))
                })
                .collect(),
        },
        Method {
            name: Popularity::NAME,
            candidates: vec![Box::new(|r, _| Box::new(Popularity::fit(r)))],
        },
    ]
}

fn main() {
    let args = Args::parse();
    let m = args.get("m", 50usize);
    let instances = args.instances();
    let seed = args.seed();
    let scale = args.scale();
    let tune = !args.flag("no-tune");
    let datasets = vec![
        ("Movielens", profiles::movielens_like(scale, seed)),
        ("CiteULike", profiles::citeulike_like(scale, seed)),
        ("B2B-DB", profiles::b2b_like(scale, seed)),
    ];

    println!(
        "Table I — MAP@{m} and recall@{m}, {instances} instance(s), scale {scale:?}, tuning {}",
        if tune { "on" } else { "off" }
    );
    println!("(synthetic stand-in datasets; see DESIGN.md §2 — compare ordering, not absolutes)\n");

    let method_names: Vec<&'static str> = methods(1, false).iter().map(|m| m.name).collect();
    let mut table = TextTable::new(
        ["dataset", "metric"]
            .into_iter()
            .map(String::from)
            .chain(method_names.iter().map(|s| s.to_string())),
    );

    for (name, data) in &datasets {
        let k_hint = data.truth.k();
        let zoo = methods(k_hint, tune);
        // hyper-parameter selection on instance 0 (the paper's
        // best-of-grid protocol)
        let select_split = Split::new(
            &data.matrix,
            &SplitConfig {
                seed,
                ..Default::default()
            },
        );
        let chosen: Vec<usize> = zoo
            .iter()
            .map(|method| {
                if method.candidates.len() == 1 {
                    return 0;
                }
                let mut best = (0usize, f64::NEG_INFINITY);
                for (ci, fit) in method.candidates.iter().enumerate() {
                    let model = fit(&select_split.train, seed);
                    let r = evaluate_recommender(
                        model.as_ref(),
                        &select_split.train,
                        &select_split.test,
                        m,
                    );
                    if r.recall > best.1 {
                        best = (ci, r.recall);
                    }
                }
                eprintln!(
                    "[table1] {name}/{}: candidate {} of {} selected",
                    method.name,
                    best.0,
                    method.candidates.len()
                );
                best.0
            })
            .collect();

        // evaluate the chosen configurations over all instances
        let mut reports: Vec<Vec<ocular_eval::EvalReport>> = vec![Vec::new(); zoo.len()];
        for inst in 0..instances {
            let split = Split::new(
                &data.matrix,
                &SplitConfig {
                    seed: seed + inst as u64,
                    ..Default::default()
                },
            );
            for (slot, method) in zoo.iter().enumerate() {
                let model = method.candidates[chosen[slot]](&split.train, seed + inst as u64);
                reports[slot].push(evaluate_recommender(
                    model.as_ref(),
                    &split.train,
                    &split.test,
                    m,
                ));
            }
        }
        let averaged: Vec<ocular_eval::EvalReport> =
            reports.iter().map(|r| average_reports(r)).collect();
        table.row(
            [name.to_string(), format!("MAP@{m}")]
                .into_iter()
                .chain(averaged.iter().map(|r| format!("{:.4}", r.map))),
        );
        table.row(
            [name.to_string(), format!("recall@{m}")]
                .into_iter()
                .chain(averaged.iter().map(|r| format!("{:.4}", r.recall))),
        );
        eprintln!(
            "[table1] {name} done ({} users evaluated)",
            averaged[0].evaluated_users
        );
    }

    println!("{}", table.render());
    if args.flag("csv") {
        println!("{}", table.to_csv());
    }

    println!("paper reference (real datasets; columns OCuLaR R-OCuLaR wALS BPR user item):");
    println!("  Movielens  MAP@50     .1809 .1805 .1513 .1434 .1639 .1329");
    println!("  Movielens  recall@50  .4021 .4086 .3982 .3587 .3757 .3238");
    println!("  CiteULike  MAP@50     .0906 .0916 .1003 .0157 .0882 .1287");
    println!("  CiteULike  recall@50  .3042 .3177 .3331 .0801 .2699 .2921");
    println!("  B2B-DB     MAP@50     .1801 .1651 .1749 .1325 .1797 .1568");
    println!("  B2B-DB     recall@50  .5240 .4780 .5283 .4407 .4995 .4840");
}
