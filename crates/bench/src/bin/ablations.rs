//! Ablations of the design choices the paper (and DESIGN.md) call out:
//!
//! 1. **single PGD step vs (near-)exact subproblem solves** — Section IV-B:
//!    *"performing only one gradient descent step significantly speeds up
//!    the algorithm"*;
//! 2. **regularization λ > 0 vs λ = 0** — Section II: regularization is
//!    the key difference from BIGCLAM and *"crucial for recommendation
//!    performance"*;
//! 3. **Armijo line search vs fixed step** — Section IV-D;
//! 4. **bias terms on vs off** — Section IV-A: *"fitting the corresponding
//!    model does not increase the recommendation performance"*;
//! 5. **sum-trick vs naive negative sums** — Section IV-D (the
//!    `O(nnz·K)` complexity claim).
//!
//! Usage: `cargo run -p ocular-bench --release --bin ablations --
//!   [--scale …] [--seed S] [--m 50]`

use ocular_bench::harness::{evaluate_recommender, OcularRecommender};
use ocular_bench::{Args, TextTable};
use ocular_core::gradient::{negative_sum, negative_sum_naive};
use ocular_core::{fit, OcularConfig};
use ocular_datasets::profiles;
use ocular_sparse::{Split, SplitConfig};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let seed = args.seed();
    let m = args.get("m", 50usize);
    let data = profiles::movielens_like(args.scale(), seed);
    let split = Split::new(
        &data.matrix,
        &SplitConfig {
            seed,
            ..Default::default()
        },
    );
    let k = data.truth.k();
    let base = OcularConfig {
        k,
        lambda: 0.5,
        max_iters: 60,
        seed,
        ..Default::default()
    };

    println!(
        "Ablations (Movielens-like, scale {:?}, K={k})\n",
        args.scale()
    );

    // 1 + 3 + 4: train variants and compare recall, time, iterations
    let variants: Vec<(&str, OcularConfig)> = vec![
        ("baseline (1 PGD step, line search, λ=0.5)", base.clone()),
        (
            "inner_steps = 5 (≈ exact subproblems)",
            OcularConfig {
                inner_steps: 5,
                ..base.clone()
            },
        ),
        (
            "inner_steps = 10",
            OcularConfig {
                inner_steps: 10,
                ..base.clone()
            },
        ),
        (
            "λ = 0 (no regularization — the BIGCLAM setting)",
            OcularConfig {
                lambda: 0.0,
                ..base.clone()
            },
        ),
        (
            "λ = 10 (over-regularized)",
            OcularConfig {
                lambda: 10.0,
                ..base.clone()
            },
        ),
        (
            "fixed step 0.01 (no line search)",
            OcularConfig {
                line_search: false,
                fixed_step: 0.01,
                ..base.clone()
            },
        ),
        (
            "bias terms enabled",
            OcularConfig {
                bias: true,
                ..base.clone()
            },
        ),
        (
            "uniform random init (no neighbourhood seeding)",
            OcularConfig {
                init: ocular_core::InitStrategy::Random,
                ..base.clone()
            },
        ),
        ("R-OCuLaR weighting", base.clone().relative()),
    ];

    let mut table = TextTable::new([
        "variant",
        "recall@M",
        "MAP@M",
        "sweeps",
        "train (s)",
        "final Q",
    ]);
    let mut baseline_recall = None;
    for (name, cfg) in &variants {
        let t0 = Instant::now();
        let result = fit(&split.train, cfg);
        let secs = t0.elapsed().as_secs_f64();
        let rec = OcularRecommender::from_model(result.model.clone(), "variant");
        let report = evaluate_recommender(&rec, &split.train, &split.test, m);
        if baseline_recall.is_none() {
            baseline_recall = Some(report.recall);
        }
        table.row([
            name.to_string(),
            format!("{:.4}", report.recall),
            format!("{:.4}", report.map),
            result.history.iterations().to_string(),
            format!("{secs:.2}"),
            format!("{:.1}", result.history.final_objective()),
        ]);
        eprintln!("[ablations] {name} done");
    }
    println!("{}", table.render());

    // 5: sum-trick vs naive negative sums (microbenchmark, exactness check)
    let (uf, _) = ocular_core::trainer::initial_factors(&split.train, &base);
    let rt = split.train.item_view();
    let sums = uf.column_sums();
    let mut fast_buf = vec![0.0; base.k_total()];
    let mut naive_buf = vec![0.0; base.k_total()];
    let items = rt.n_rows().min(200);
    let t0 = Instant::now();
    for i in 0..items {
        negative_sum(&uf, &sums, rt.row(i), &mut fast_buf);
    }
    let fast_t = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for i in 0..items {
        negative_sum_naive(&uf, rt.row(i), &mut naive_buf);
    }
    let naive_t = t0.elapsed().as_secs_f64();
    // exactness on the last item
    let max_diff = fast_buf
        .iter()
        .zip(&naive_buf)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "sum-trick ablation ({items} item negative-sums, {} users):",
        uf.rows()
    );
    println!("  sum-trick: {fast_t:.4} s   naive: {naive_t:.4} s   speedup {:.0}×   max |Δ| = {max_diff:.2e}",
        naive_t / fast_t.max(1e-12));
    println!("\nexpected shape (paper): extra inner steps trade wall-clock time for at");
    println!("most marginal accuracy (the paper picks 1 step per subproblem for speed);");
    println!("removing the line search destroys training; bias ≈ baseline (Section");
    println!("IV-A's finding); the sum-trick is orders of magnitude faster and");
    println!("numerically identical.");
}
