//! CI bench-regression gate.
//!
//! Compares fresh `BENCH_serve.json` / `BENCH_train.json` /
//! `BENCH_net.json` artifacts against the committed baseline
//! (`ci/bench-baseline.json`) and exits non-zero when p50 serve latency,
//! train time, or network serving performance regresses more than the
//! tolerance (default 25%). Latencies and durations gate higher-is-worse;
//! network and sharded-coordinator throughput gate lower-is-worse. A
//! machine-independent check compares cluster-mode p50 against the same
//! run's full-sort p50, so "candidate generation stopped helping" is
//! caught even when absolute wall-clock differs across runner hardware;
//! two more same-run checks bound the scatter-gather coordinator's N=1
//! overhead at 5% and require 4-shard throughput to beat 1-shard on
//! multi-core runners. Skipped entirely — exit 0 —
//! when the `BENCH_BASELINE_RESET` environment variable is set to `1`
//! (CI sets it from the `bench-baseline-reset` PR label), in which case
//! the gate prints the JSON to commit as the new baseline.
//!
//! ```text
//! bench_gate --baseline ci/bench-baseline.json \
//!            --serve BENCH_serve.json --train BENCH_train.json \
//!            --net BENCH_net.json [--tolerance 0.25]
//! ```

use ocular_bench::Args;
use ocular_serve::json::{obj, Json};
use std::process::ExitCode;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// Pulls a numeric field along a dotted path (`"engine_clusters.p50_us"`).
fn field(doc: &Json, path: &str) -> Result<f64, String> {
    let mut v = doc;
    for key in path.split('.') {
        v = v.get(key).ok_or(format!("missing field `{path}`"))?;
    }
    v.as_f64()
        .filter(|n| *n > 0.0)
        .ok_or(format!("field `{path}` is not a positive number"))
}

fn run() -> Result<Vec<String>, String> {
    let args = Args::parse();
    let tolerance = args.get("tolerance", 0.25f64);
    let baseline_path = args.get("baseline", "ci/bench-baseline.json".to_string());
    let serve_path = args.get("serve", "BENCH_serve.json".to_string());
    let train_path = args.get("train", "BENCH_train.json".to_string());
    let net_path = args.get("net", "BENCH_net.json".to_string());

    let serve = load(&serve_path)?;
    let train = load(&train_path)?;
    let net = load(&net_path)?;
    let serve_p50 = field(&serve, "engine_clusters.p50_us")?;
    let full_sort_p50 = field(&serve, "full_sort.p50_us")?;
    let train_seconds = field(&train, "train_seconds")?;
    let ingest_seconds = field(&train, "ingest_seconds")?;
    let delta_append_seconds = field(&train, "delta_append_seconds")?;
    // mean per-sweep seconds of the fixed-work flatness run
    let per_sweep = train
        .get("per_sweep_seconds")
        .and_then(|v| v.as_array())
        .ok_or("missing field `per_sweep_seconds`")?;
    let sweep_times: Vec<f64> = per_sweep
        .iter()
        .map(|j| {
            j.as_f64()
                .filter(|n| *n > 0.0)
                .ok_or("`per_sweep_seconds` entries must be positive numbers")
        })
        .collect::<Result<_, _>>()?;
    if sweep_times.is_empty() {
        return Err("`per_sweep_seconds` is empty".into());
    }
    let train_sweep_seconds = sweep_times.iter().sum::<f64>() / sweep_times.len() as f64;
    let sweep_flatness = field(&train, "sweep_flatness")?;
    // per-model-kind serving rows (baseline key = "<kind>_p50_us", with
    // `-` mapped to `_`)
    let kinds = ["wals", "bpr", "item-knn", "popularity"];
    let kind_p50 = kinds
        .iter()
        .map(|kind| field(&serve, &format!("kinds.{kind}.p50_us")))
        .collect::<Result<Vec<f64>, _>>()?;
    // cold-path tail: fold-in is the cold request's whole cost, so its p99
    // is gated, not just its p50 — the per-worker scratch reuse claim
    let cold_p99 = field(&serve, "engine_cold.p99_us")?;
    // quantized scoring kernels on the large catalog (f64/f32/int8)
    let quant_f64 = field(&serve, "quant.f64.p50_us")?;
    let quant_f32 = field(&serve, "quant.f32.p50_us")?;
    let quant_i8 = field(&serve, "quant.int8.p50_us")?;
    // snapshot cold-start cost, both formats (the v3 zero-copy claim)
    let load_text = field(&serve, "snapshot_load.text_seconds")?;
    let load_binary = field(&serve, "snapshot_load.binary_seconds")?;
    // end-to-end TCP serving tier: sustained closed-loop throughput and
    // round-trip latency quantiles from the loadgen run
    let net_throughput = field(&net, "throughput_rps")?;
    let net_p50 = field(&net, "p50_us")?;
    let net_p99 = field(&net, "p99_us")?;
    let net_errors = net
        .get("errors")
        .and_then(|v| v.as_f64())
        .ok_or("missing field `errors` in net artifact")?;
    // scatter-gather shard scaling: batched throughput at each shard
    // count plus the single-thread unsharded row the overhead bound
    // compares against
    let shard_base = field(&serve, "shard_scaling.baseline_1thread_rps")?;
    let shard_counts = [1usize, 2, 4];
    let shard_rps = shard_counts
        .iter()
        .map(|n| field(&serve, &format!("shard_scaling.shards_{n}_rps")))
        .collect::<Result<Vec<f64>, _>>()?;

    if std::env::var("BENCH_BASELINE_RESET").as_deref() == Ok("1") {
        let mut fields = vec![
            ("serve_p50_us".to_string(), Json::Num(serve_p50)),
            ("train_seconds".to_string(), Json::Num(train_seconds)),
            ("ingest_seconds".to_string(), Json::Num(ingest_seconds)),
            (
                "train_sweep_seconds".to_string(),
                Json::Num(train_sweep_seconds),
            ),
        ];
        for (kind, p50) in kinds.iter().zip(&kind_p50) {
            fields.push((
                format!("{}_p50_us", kind.replace('-', "_")),
                Json::Num(*p50),
            ));
        }
        fields.push(("engine_cold_p99_us".to_string(), Json::Num(cold_p99)));
        fields.push(("quant_f64_p50_us".to_string(), Json::Num(quant_f64)));
        fields.push(("quant_f32_p50_us".to_string(), Json::Num(quant_f32)));
        fields.push(("quant_int8_p50_us".to_string(), Json::Num(quant_i8)));
        fields.push((
            "snapshot_load_text_seconds".to_string(),
            Json::Num(load_text),
        ));
        fields.push((
            "snapshot_load_binary_seconds".to_string(),
            Json::Num(load_binary),
        ));
        fields.push(("net_throughput_rps".to_string(), Json::Num(net_throughput)));
        fields.push(("net_p50_us".to_string(), Json::Num(net_p50)));
        fields.push(("net_p99_us".to_string(), Json::Num(net_p99)));
        for (n, rps) in shard_counts.iter().zip(&shard_rps) {
            fields.push((format!("shard_{n}_rps"), Json::Num(*rps)));
        }
        let fresh = obj(fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect());
        println!("bench_gate: BENCH_BASELINE_RESET=1 — gate skipped.");
        println!("new baseline for {baseline_path}:\n{fresh}");
        return Ok(vec![]);
    }

    let baseline = load(&baseline_path)?;
    let base_serve = field(&baseline, "serve_p50_us")?;
    let base_train = field(&baseline, "train_seconds")?;

    let mut failures = Vec::new();
    let mut check = |name: &str, current: f64, base: f64| {
        let ratio = current / base;
        let verdict = if ratio > 1.0 + tolerance {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_gate: {name:<14} current={current:10.1}  baseline={base:10.1}  ratio={ratio:5.2}  {verdict}"
        );
        if ratio > 1.0 + tolerance {
            failures.push(format!(
                "{name} regressed {:.0}% (> {:.0}% tolerance)",
                (ratio - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    };
    check("serve_p50_us", serve_p50, base_serve);
    check("train_seconds", train_seconds, base_train);
    check(
        "ingest_seconds",
        ingest_seconds,
        field(&baseline, "ingest_seconds")?,
    );
    check(
        "train_sweep_s",
        train_sweep_seconds,
        field(&baseline, "train_sweep_seconds")?,
    );
    // machine-independent same-run check: per-sweep time must stay flat
    // across a training run — last sweep within tolerance of the fastest
    // (the probe asserts a 1.2× bound on the same ratio at run time)
    check("sweep_flatness", sweep_flatness, 1.0);
    // machine-independent same-run check: merging the 10% delta must not
    // cost as much as the full re-ingest it replaces — the live-refresh
    // "one merge pass, never a full re-ingest" guarantee, gated on the
    // same run so hardware noise cancels
    check("delta_append_s", delta_append_seconds, ingest_seconds);
    // machine-independent same-run check: candidate generation + heap
    // selection must not serve slower than the retired full-sort path — a
    // hardware-noise-proof signal that the serving optimization still works
    check("vs_full_sort", serve_p50, full_sort_p50);
    // per-model-kind serving gates (baseline entries are required once the
    // kinds exist in the artifact, so a silently dropped row fails loudly)
    for (kind, p50) in kinds.iter().zip(&kind_p50) {
        let key = format!("{}_p50_us", kind.replace('-', "_"));
        let base = field(&baseline, &key)?;
        check(&key, *p50, base);
    }
    // the cold-path tail gate: fold-in scratch reuse keeps the p99 down,
    // and a reintroduced per-request allocation shows up here first
    check(
        "cold_p99_us",
        cold_p99,
        field(&baseline, "engine_cold_p99_us")?,
    );
    // quantized kernel gates: no dtype may regress against its baseline…
    check(
        "quant_f64_p50",
        quant_f64,
        field(&baseline, "quant_f64_p50_us")?,
    );
    check(
        "quant_f32_p50",
        quant_f32,
        field(&baseline, "quant_f32_p50_us")?,
    );
    check(
        "quant_i8_p50",
        quant_i8,
        field(&baseline, "quant_int8_p50_us")?,
    );
    // snapshot cold-start gates: neither format may regress…
    check(
        "snap_text_s",
        load_text,
        field(&baseline, "snapshot_load_text_seconds")?,
    );
    check(
        "snap_binary_s",
        load_binary,
        field(&baseline, "snapshot_load_binary_seconds")?,
    );
    // end-to-end TCP round-trip latency gates (higher is worse, like every
    // other latency row)
    check("net_p50_us", net_p50, field(&baseline, "net_p50_us")?);
    check("net_p99_us", net_p99, field(&baseline, "net_p99_us")?);
    // sustained network throughput gates in the opposite direction: the
    // current run must not fall more than the tolerance *below* baseline
    {
        let base = field(&baseline, "net_throughput_rps")?;
        let ratio = net_throughput / base;
        let verdict = if ratio < 1.0 - tolerance {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_gate: {:<14} current={net_throughput:10.1}  baseline={base:10.1}  ratio={ratio:5.2}  {verdict}",
            "net_rps"
        );
        if ratio < 1.0 - tolerance {
            failures.push(format!(
                "net_throughput_rps dropped {:.0}% (> {:.0}% tolerance)",
                (1.0 - ratio) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    // machine-independent same-run check: a healthy server never errors
    // under closed-loop load — shedding is typed, failures are not allowed
    if net_errors > 0.0 {
        failures.push(format!(
            "loadgen observed {net_errors:.0} transport/protocol errors (must be 0)"
        ));
    }
    // …and, machine-independently within the same run, each narrower
    // dtype must score the 100k catalog *strictly* faster than the wider
    // one — the whole point of quantized serving, gated not asserted
    println!(
        "bench_gate: quant_ladder   f64={quant_f64:8.1}µs  f32={quant_f32:8.1}µs  int8={quant_i8:8.1}µs"
    );
    if quant_f32 >= quant_f64 {
        failures.push(format!(
            "f32 full-catalog p50 ({quant_f32:.1}µs) is not strictly below f64's \
             ({quant_f64:.1}µs)"
        ));
    }
    if quant_i8 >= quant_f32 {
        failures.push(format!(
            "int8 full-catalog p50 ({quant_i8:.1}µs) is not strictly below f32's \
             ({quant_f32:.1}µs)"
        ));
    }
    // …and, machine-independently within the same run, the v3 mmap load
    // must be *strictly* faster than parsing the text snapshot of the
    // same model — the zero-copy start-up claim, gated not asserted
    println!(
        "bench_gate: bin_vs_text    binary={:10.5}s text={:10.5}s  ({:.0}× faster)",
        load_binary,
        load_text,
        load_text / load_binary
    );
    if load_binary >= load_text {
        failures.push(format!(
            "binary snapshot load ({load_binary:.5}s) is not strictly below the text path \
             ({load_text:.5}s)"
        ));
    }
    // sharded-coordinator throughput gates in the same direction as
    // net_rps: no shard count may fall more than the tolerance below its
    // committed baseline
    for (n, rps) in shard_counts.iter().zip(&shard_rps) {
        let key = format!("shard_{n}_rps");
        let base = field(&baseline, &key)?;
        let ratio = rps / base;
        let verdict = if ratio < 1.0 - tolerance {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_gate: {key:<14} current={rps:10.1}  baseline={base:10.1}  ratio={ratio:5.2}  {verdict}"
        );
        if ratio < 1.0 - tolerance {
            failures.push(format!(
                "{key} dropped {:.0}% (> {:.0}% tolerance)",
                (1.0 - ratio) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    // machine-independent same-run check: at one shard the scatter-gather
    // coordinator may cost at most 5% of the unsharded engine's batched
    // throughput on one thread — hash routing and the top-M merge must
    // stay invisible next to scoring
    println!(
        "bench_gate: shard_overhead 1-shard={:10.1}  unsharded(1t)={shard_base:10.1}  overhead={:4.1}%",
        shard_rps[0],
        (1.0 - shard_rps[0] / shard_base) * 100.0
    );
    if shard_rps[0] < 0.95 * shard_base {
        failures.push(format!(
            "1-shard coordinator throughput ({:.1} rps) is more than 5% below the \
             single-thread unsharded engine ({shard_base:.1} rps)",
            shard_rps[0]
        ));
    }
    // …and on any multi-core runner, four shards must beat one in the
    // same run — the scaling claim itself (single-core CI gates only the
    // overhead bound above, where parallel shards cannot win)
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "bench_gate: shard_scaling  1={:8.1}  2={:8.1}  4={:8.1} rps  ({cores} cores)",
        shard_rps[0], shard_rps[1], shard_rps[2]
    );
    if cores > 1 && shard_rps[2] < shard_rps[0] {
        failures.push(format!(
            "4-shard throughput ({:.1} rps) fell below 1-shard ({:.1} rps) on a \
             {cores}-core runner",
            shard_rps[2], shard_rps[0]
        ));
    }
    Ok(failures)
}

fn main() -> ExitCode {
    match run() {
        Ok(failures) if failures.is_empty() => ExitCode::SUCCESS,
        Ok(failures) => {
            for f in &failures {
                eprintln!("bench_gate: {f}");
            }
            eprintln!(
                "bench_gate: to accept a new baseline, apply the `bench-baseline-reset` label \
                 (or set BENCH_BASELINE_RESET=1) and commit the printed JSON to ci/bench-baseline.json"
            );
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            ExitCode::FAILURE
        }
    }
}
