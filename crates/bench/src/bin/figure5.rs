//! **Figure 5** — recall@M and MAP@M versus M on the Movielens dataset for
//! OCuLaR, R-OCuLaR, wALS, BPR, user-based and item-based CF.
//!
//! Paper result: *"OCuLaR and R-OCuLaR are consistently better or at least
//! as good as the other recommendation techniques"* across the whole range
//! of M.
//!
//! Usage: `cargo run -p ocular-bench --release --bin figure5 --
//!   [--scale …] [--seed S] [--max-m 100] [--csv]`

use ocular_baselines::{all_baselines, BaselineConfigs, BprConfig, Recommender, WalsConfig};
use ocular_bench::harness::{default_ocular_config, OcularRecommender};
use ocular_bench::{Args, TextTable};
use ocular_datasets::profiles;
use ocular_eval::curves::metric_curves;
use ocular_sparse::{Split, SplitConfig};

fn main() {
    let args = Args::parse();
    let seed = args.seed();
    let max_m = args.get("max-m", 100usize);
    let data = profiles::movielens_like(args.scale(), seed);
    let split = Split::new(
        &data.matrix,
        &SplitConfig {
            seed,
            ..Default::default()
        },
    );
    let k_hint = data.truth.k();

    let ocfg = default_ocular_config(k_hint, seed);
    let mut models: Vec<(&'static str, Box<dyn Recommender>)> = vec![
        (
            "OCuLaR",
            Box::new(OcularRecommender::fit_absolute(&split.train, &ocfg)),
        ),
        (
            "R-OCuLaR",
            Box::new(OcularRecommender::fit_relative(&split.train, &ocfg)),
        ),
    ];
    // the named baseline zoo, with the latent dimensionality matched to the
    // profile's planted scale (the kNN variants keep their defaults)
    models.extend(all_baselines(
        &split.train,
        &BaselineConfigs {
            wals: WalsConfig {
                k: k_hint,
                seed,
                ..Default::default()
            },
            bpr: BprConfig {
                k: k_hint,
                seed,
                ..Default::default()
            },
            ..BaselineConfigs::seeded(seed)
        },
    ));

    println!(
        "Figure 5 — recall@M and MAP@M vs M (Movielens-like, scale {:?})\n",
        args.scale()
    );
    let curves: Vec<(_, _)> = models
        .iter()
        .map(|(name, model)| {
            let c = metric_curves(model.as_ref(), &split.train, &split.test, max_m);
            eprintln!("[figure5] {name} done");
            (*name, c)
        })
        .collect();

    let checkpoints: Vec<usize> = [1, 2, 5, 10, 20, 50, 100]
        .into_iter()
        .filter(|&m| m <= max_m)
        .collect();
    for metric in ["recall", "MAP"] {
        let mut table = TextTable::new(
            std::iter::once("M".to_string()).chain(curves.iter().map(|(n, _)| n.to_string())),
        );
        for &m in &checkpoints {
            table.row(
                std::iter::once(m.to_string()).chain(curves.iter().map(|(_, c)| {
                    let v = if metric == "recall" {
                        c.recall_at(m)
                    } else {
                        c.map_at(m)
                    };
                    format!("{v:.4}")
                })),
            );
        }
        println!("{metric}@M:");
        println!("{}", table.render());
    }

    if args.flag("csv") {
        for (name, c) in &curves {
            println!("# {name}");
            println!("{}", c.to_csv());
        }
    }
}
