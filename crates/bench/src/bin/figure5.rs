//! **Figure 5** — recall@M and MAP@M versus M on the Movielens dataset for
//! OCuLaR, R-OCuLaR, wALS, BPR, user-based and item-based CF.
//!
//! Paper result: *"OCuLaR and R-OCuLaR are consistently better or at least
//! as good as the other recommendation techniques"* across the whole range
//! of M.
//!
//! Usage: `cargo run -p ocular-bench --release --bin figure5 --
//!   [--scale …] [--seed S] [--max-m 100] [--csv]`

use ocular_baselines::{
    Bpr, BprConfig, ItemKnn, KnnConfig, Recommender, UserKnn, Wals, WalsConfig,
};
use ocular_bench::harness::{default_ocular_config, OcularRecommender};
use ocular_bench::{Args, TextTable};
use ocular_datasets::profiles;
use ocular_eval::curves::metric_curves;
use ocular_sparse::{Split, SplitConfig};

fn main() {
    let args = Args::parse();
    let seed = args.seed();
    let max_m = args.get("max-m", 100usize);
    let data = profiles::movielens_like(args.scale(), seed);
    let split = Split::new(
        &data.matrix,
        &SplitConfig {
            seed,
            ..Default::default()
        },
    );
    let k_hint = data.truth.k();

    let ocfg = default_ocular_config(k_hint, seed);
    let models: Vec<Box<dyn Recommender>> = vec![
        Box::new(OcularRecommender::fit_absolute(&split.train, &ocfg)),
        Box::new(OcularRecommender::fit_relative(&split.train, &ocfg)),
        Box::new(Wals::fit(
            &split.train,
            &WalsConfig {
                k: k_hint,
                seed,
                ..Default::default()
            },
        )),
        Box::new(Bpr::fit(
            &split.train,
            &BprConfig {
                k: k_hint,
                seed,
                ..Default::default()
            },
        )),
        Box::new(UserKnn::fit(&split.train, &KnnConfig::default())),
        Box::new(ItemKnn::fit(&split.train, &KnnConfig::default())),
    ];

    println!(
        "Figure 5 — recall@M and MAP@M vs M (Movielens-like, scale {:?})\n",
        args.scale()
    );
    let curves: Vec<(_, _)> = models
        .iter()
        .map(|model| {
            let c = metric_curves(
                |u, buf| model.score_user(u, buf),
                &split.train,
                &split.test,
                max_m,
            );
            eprintln!("[figure5] {} done", model.name());
            (model.name(), c)
        })
        .collect();

    let checkpoints: Vec<usize> = [1, 2, 5, 10, 20, 50, 100]
        .into_iter()
        .filter(|&m| m <= max_m)
        .collect();
    for metric in ["recall", "MAP"] {
        let mut table = TextTable::new(
            std::iter::once("M".to_string()).chain(curves.iter().map(|(n, _)| n.to_string())),
        );
        for &m in &checkpoints {
            table.row(
                std::iter::once(m.to_string()).chain(curves.iter().map(|(_, c)| {
                    let v = if metric == "recall" {
                        c.recall_at(m)
                    } else {
                        c.map_at(m)
                    };
                    format!("{v:.4}")
                })),
            );
        }
        println!("{metric}@M:");
        println!("{}", table.render());
    }

    if args.flag("csv") {
        for (name, c) in &curves {
            println!("# {name}");
            println!("{}", c.to_csv());
        }
    }
}
