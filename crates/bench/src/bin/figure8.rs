//! **Figure 8** — distance to optimal training likelihood versus time:
//! sequential ("CPU") versus the simulated massively-parallel engine
//! ("GPU").
//!
//! Paper result: the CUDA implementation reaches the same training
//! accuracy 57× faster than the C++/boost CPU implementation on Netflix
//! with K = 200. Our substitute (DESIGN.md §2) runs the paper's kernel
//! decomposition on host threads, so the *shape* reproduces — identical
//! final likelihood, parallel trace strictly left of the sequential one —
//! with the speedup bounded by host cores instead of 57×.
//!
//! Also prints the §VI memory-footprint model for the run and for the
//! paper's Netflix/K=200 worked example.
//!
//! Usage: `cargo run -p ocular-bench --release --bin figure8 --
//!   [--scale …] [--seed S] [--k 32] [--sweeps 12] [--csv]`

use ocular_bench::{Args, TextTable};
use ocular_core::{fit, OcularConfig};
use ocular_datasets::profiles;
use ocular_parallel::memory::paper_netflix_example;
use ocular_parallel::{fit_parallel, speedup_at_threshold, MemoryModel, TimedTrace};

fn main() {
    let args = Args::parse();
    let seed = args.seed();
    let k = args.get("k", 32usize);
    let sweeps = args.get("sweeps", 12usize);
    let data = profiles::netflix_like(args.scale(), seed);
    let cfg = OcularConfig {
        k,
        lambda: 0.5,
        max_iters: sweeps,
        tol: 0.0,
        seed,
        ..Default::default()
    };

    println!(
        "Figure 8 — likelihood vs time, sequential vs parallel (Netflix-like, {} positives, K={k})\n",
        data.matrix.nnz()
    );

    eprintln!("[figure8] sequential (CPU reference) training…");
    let cpu = fit(&data.matrix, &cfg);
    eprintln!("[figure8] parallel (simulated GPU) training…");
    let gpu = fit_parallel(&data.matrix, &cfg, None);
    assert_eq!(
        cpu.model, gpu.model,
        "the parallel engine must reach the identical model"
    );

    let cpu_trace = TimedTrace::from_history(&cpu.history);
    let gpu_trace = TimedTrace::from_history(&gpu.history);
    let q_opt = cpu_trace.best().min(gpu_trace.best());

    let mut table = TextTable::new([
        "sweep",
        "CPU time (s)",
        "GPU-sim time (s)",
        "distance to optimal",
    ]);
    let cpu_d = cpu_trace.distance_to(q_opt);
    for (i, d) in cpu_d.iter().enumerate() {
        table.row([
            i.to_string(),
            format!("{:.3}", cpu_trace.seconds[i]),
            format!("{:.3}", gpu_trace.seconds[i]),
            format!("{d:.1}"),
        ]);
    }
    println!("{}", table.render());

    for gap in [1e-2, 1e-3, 1e-4] {
        match speedup_at_threshold(&cpu_trace, &gpu_trace, gap) {
            Some(s) => println!("speedup at relative gap {gap:.0e}: {s:.1}×"),
            None => println!("speedup at relative gap {gap:.0e}: target not reached"),
        }
    }
    let threads = rayon::current_num_threads();
    println!("(host parallelism: {threads} threads — the paper's GPU reached 57×)\n");

    let here = MemoryModel::host_f64(
        data.matrix.nnz(),
        data.matrix.n_rows(),
        data.matrix.n_cols(),
        k,
    );
    let paper = paper_netflix_example();
    println!("§VI memory model:");
    println!(
        "  this run:          {:>10.3} MB (training data {:.1} MB, factors {:.1} MB, gradients {:.1} MB)",
        here.total_bytes() as f64 / 1e6,
        here.training_data_bytes() as f64 / 1e6,
        here.factor_bytes() as f64 / 1e6,
        here.gradient_bytes() as f64 / 1e6
    );
    println!(
        "  paper Netflix/K=200: {:>8.2} GB (paper reports ≈2.7 GB; fits 12 GB GPU: {})",
        paper.total_bytes() as f64 / 1e9,
        paper.fits_in_gb(12.0)
    );

    if args.flag("csv") {
        println!("# CPU\n{}", cpu_trace.to_csv());
        println!("# GPU-sim\n{}", gpu_trace.to_csv());
    }
}
