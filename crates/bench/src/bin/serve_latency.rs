//! Request-path latency/throughput probe for `ocular-serve`, emitting the
//! `BENCH_serve.json` artifact the CI bench-regression gate consumes.
//!
//! Trains OCuLaR on the powerlaw profile, builds a serving engine, then
//! measures per-request latency percentiles for (a) the retired
//! score-all + full-sort path, (b) the engine in full-catalog (heap) mode
//! and (c) the engine in cluster candidate-generation mode, plus batched
//! throughput and a per-model-kind warm-request row for every baseline
//! the polymorphic engine can serve (wals, bpr, item-knn, popularity).
//! A second section measures the quantized scoring kernels (f64 vs f32 vs
//! int8) on a large synthetic catalog — 100k items by default — where the
//! memory-bandwidth difference between the dtypes is actually visible.
//! A third section measures scatter-gather shard scaling: batched warm
//! throughput through the sharded coordinator at 1/2/4 shards against the
//! unsharded engine pinned to one thread, so the N=1 row isolates the
//! coordinator's routing + merge overhead rather than parallelism.
//! Flags: `--scale`, `--seed`, `--requests N`, `--m N`,
//! `--rel R` / `--floor N` (index build knobs),
//! `--quant-items N` / `--quant-k N` / `--quant-requests N` (quantized
//! catalog section), `--out PATH` (default `BENCH_serve.json`).

use ocular_api::Model;
use ocular_baselines::{BaselineConfigs, Bpr, ItemKnn, Popularity, Wals};
use ocular_bench::Args;
use ocular_core::{fit, FactorModel, OcularConfig, Recommendation};
use ocular_datasets::profiles;
use ocular_serve::json::{obj, Json};
use ocular_serve::{
    CandidatePolicy, EngineBuilder, IndexConfig, QuantDtype, Request, ServeConfig, ShardedEngine,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Per-request wall-clock percentiles, in microseconds.
struct Latency {
    p50: f64,
    p90: f64,
    p99: f64,
}

fn percentiles(mut micros: Vec<f64>) -> Latency {
    micros.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let at = |q: f64| micros[((micros.len() - 1) as f64 * q).round() as usize];
    Latency {
        p50: at(0.50),
        p90: at(0.90),
        p99: at(0.99),
    }
}

fn measure<F: FnMut(usize)>(requests: usize, mut f: F) -> Latency {
    let mut micros = Vec::with_capacity(requests);
    for i in 0..requests {
        let t0 = Instant::now();
        f(i);
        micros.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    percentiles(micros)
}

/// The pre-heap selection path the engine replaces: score every item, sort
/// the whole candidate vector.
fn full_sort(model: &ocular_core::FactorModel, r: &ocular_sparse::CsrMatrix, u: usize, m: usize) {
    let mut scores = Vec::new();
    model.score_user(u, &mut scores);
    let owned = r.row(u);
    let mut candidates: Vec<Recommendation> = scores
        .into_iter()
        .enumerate()
        .filter(|(i, _)| owned.binary_search_by(|&e| (e as usize).cmp(i)).is_err())
        .map(|(item, probability)| Recommendation { item, probability })
        .collect();
    candidates.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .expect("finite")
            .then_with(|| a.item.cmp(&b.item))
    });
    candidates.truncate(m);
    std::hint::black_box(candidates.len());
}

/// Seeded sparse non-negative affiliation factors, shaped like trained
/// OCuLaR rows (a handful of active clusters each). The scoring kernels
/// only ever see the factor matrices, so the 100k-catalog dtype
/// comparison synthesises them instead of paying a full training run.
fn synth_factors(rows: usize, k: usize, active: usize, rng: &mut StdRng) -> ocular_linalg::Matrix {
    let mut m = ocular_linalg::Matrix::zeros(rows, k);
    for r in 0..rows {
        let row = m.row_mut(r);
        for _ in 0..active {
            row[rng.gen_range(0..k)] += rng.gen::<f64>();
        }
    }
    m
}

fn main() {
    let args = Args::parse();
    let seed = args.seed();
    let m = args.get("m", 50usize);
    let n_requests = args.get("requests", 2000usize).max(1);
    let index_cfg = IndexConfig {
        rel: args.get("rel", 0.5f64),
        floor: args.get("floor", 100usize),
    };
    let out_path = args.get("out", "BENCH_serve.json".to_string());

    let data = profiles::b2b_like(args.scale(), seed);
    let r = data.matrix;
    let k = data.truth.k();
    let cfg = OcularConfig {
        k,
        lambda: 1.0,
        max_iters: 15,
        seed,
        ..Default::default()
    };
    let t0 = Instant::now();
    let model = fit(&r, &cfg).model;
    let train_seconds = t0.elapsed().as_secs_f64();
    eprintln!(
        "powerlaw(b2b) {}×{} nnz={} k={k}: trained in {train_seconds:.2}s",
        r.n_rows(),
        r.n_cols(),
        r.nnz()
    );

    let mk_engine = |candidates| {
        EngineBuilder::from_model(model.clone())
            .dataset(r.clone())
            .index_config(index_cfg)
            .config(ServeConfig {
                default_m: m,
                candidates,
                foldin: cfg.clone(),
                ..Default::default()
            })
            .build()
            .expect("engine")
    };
    let engine_full = mk_engine(CandidatePolicy::FullCatalog);
    let engine_clusters = mk_engine(CandidatePolicy::Clusters { min_candidates: m });

    let user_at = |i: usize| (i * 31) % r.n_rows();
    let lat_sort = measure(n_requests, |i| full_sort(&model, &r, user_at(i), m));
    let lat_full = measure(n_requests, |i| {
        std::hint::black_box(
            engine_full
                .serve_one(&Request::Warm {
                    user: user_at(i),
                    m,
                })
                .unwrap()
                .items
                .len(),
        );
    });
    let mut fallbacks = 0usize;
    let mut scored_total = 0usize;
    let lat_clusters = measure(n_requests, |i| {
        let served = engine_clusters
            .serve_one(&Request::Warm {
                user: user_at(i),
                m,
            })
            .unwrap();
        fallbacks += usize::from(served.fell_back);
        scored_total += served.scored;
        std::hint::black_box(served.items.len());
    });
    let lat_cold = measure(n_requests.min(200), |i| {
        let basket: Vec<usize> = r
            .row(user_at(i))
            .iter()
            .take(8)
            .map(|&x| x as usize)
            .collect();
        std::hint::black_box(
            engine_clusters
                .serve_one(&Request::Cold { basket, m })
                .map(|s| s.items.len())
                .unwrap_or(0),
        );
    });

    // snapshot cold-start cost on the same model: text parse vs v3 mmap.
    // This is the number the O(1)-start-up claim is gated on — bench_gate
    // fails if the binary path is not strictly below the text path.
    let snapshot = ocular_serve::Snapshot::build(model.clone(), &index_cfg);
    let snap = ocular_serve::AnySnapshot::Ocular(snapshot.clone());
    let (load_text_s, load_binary_s) =
        ocular_bench::persistence::snapshot_load_seconds(&snap, r.ids(), 7);
    eprintln!(
        "snapshot load: text {:.2}ms vs binary(mmap) {:.3}ms ({:.0}× faster)",
        load_text_s * 1e3,
        load_binary_s * 1e3,
        load_text_s / load_binary_s
    );

    let batch: Vec<Request> = (0..n_requests)
        .map(|i| Request::Warm {
            user: user_at(i),
            m,
        })
        .collect();
    let t0 = Instant::now();
    let served = engine_clusters.serve_batch(&batch);
    let batch_seconds = t0.elapsed().as_secs_f64();
    assert!(served.iter().all(|s| s.is_ok()));
    let throughput = n_requests as f64 / batch_seconds;

    // scatter-gather shard scaling on the same warm batch. The unsharded
    // row is pinned to one worker thread so the N=1 comparison isolates
    // the coordinator's hash-routing + top-M merge cost from parallelism;
    // the 1/2/4-shard rows then show batched throughput growing with the
    // shard count. bench_gate pins the ≤5% N=1 overhead bound on every
    // runner and the 4-shard ≥ 1-shard scaling claim on multi-core ones.
    // Best-of-3 per row so one scheduler hiccup does not trip the gate.
    let rps_best = |run: &mut dyn FnMut()| {
        let mut best = 0.0f64;
        for _ in 0..3 {
            let t0 = Instant::now();
            run();
            best = best.max(n_requests as f64 / t0.elapsed().as_secs_f64());
        }
        best
    };
    let baseline_1thread_rps = rps_best(&mut || {
        let served = engine_clusters.serve_batch_threads(&batch, Some(1));
        assert!(served.iter().all(|s| s.is_ok()));
        std::hint::black_box(served.len());
    });
    let mut shard_rps = Vec::new();
    for n_shards in [1usize, 2, 4] {
        let coordinator = ShardedEngine::split(
            snapshot.clone(),
            &r,
            n_shards,
            ServeConfig {
                default_m: m,
                candidates: CandidatePolicy::Clusters { min_candidates: m },
                foldin: cfg.clone(),
                ..Default::default()
            },
            7,
            None,
        )
        .expect("sharded coordinator");
        let rps = rps_best(&mut || {
            let served = coordinator.serve_batch(&batch);
            assert!(served.iter().all(|s| s.is_ok()));
            std::hint::black_box(served.len());
        });
        eprintln!(
            "scatter-gather {n_shards} shard(s): {rps:.0} req/s \
             (unsharded on one thread: {baseline_1thread_rps:.0})"
        );
        shard_rps.push(rps);
    }

    let report = |name: &str, l: &Latency| {
        eprintln!(
            "{name:<28} p50={:8.1}µs  p90={:8.1}µs  p99={:8.1}µs",
            l.p50, l.p90, l.p99
        );
    };
    report("full-sort (old path)", &lat_sort);
    report("engine full-catalog (heap)", &lat_full);
    report("engine clusters (cand+heap)", &lat_clusters);
    report("engine cold-start (fold-in)", &lat_cold);
    eprintln!(
        "cluster mode: mean scored {:.0}/{} items, {fallbacks}/{n_requests} fallbacks; batch throughput {throughput:.0} req/s",
        scored_total as f64 / n_requests as f64,
        r.n_cols()
    );

    // per-model-kind rows: every baseline kind the polymorphic engine can
    // serve, measured on the same warm-request mix (full-catalog — the
    // cluster policy degrades to exactly this path for these kinds)
    let bl = BaselineConfigs::seeded(seed);
    let kind_models: Vec<Box<dyn Model>> = vec![
        Box::new(Wals::fit(
            &r,
            &ocular_baselines::WalsConfig { k, ..bl.wals },
        )),
        Box::new(Bpr::fit(&r, &ocular_baselines::BprConfig { k, ..bl.bpr })),
        Box::new(ItemKnn::fit(&r, &bl.item_knn)),
        Box::new(Popularity::fit(&r)),
    ];
    let mut kind_rows: Vec<(&'static str, Latency)> = Vec::new();
    for model in kind_models {
        let kind = model.kind();
        let engine = EngineBuilder::from_recommender(model)
            .dataset(r.clone())
            .config(ServeConfig {
                default_m: m,
                candidates: CandidatePolicy::FullCatalog,
                ..Default::default()
            })
            .build()
            .expect("baseline engine");
        let lat = measure(n_requests, |i| {
            std::hint::black_box(
                engine
                    .serve_one(&Request::Warm {
                        user: user_at(i),
                        m,
                    })
                    .unwrap()
                    .items
                    .len(),
            );
        });
        report(&format!("engine {kind}"), &lat);
        kind_rows.push((kind, lat));
    }

    // quantized scoring kernels on a large catalog. At the profile sizes
    // above the whole factor matrix sits in cache and every dtype looks
    // alike; at 100k items × k=64 the f64 path streams ~50 MB per request
    // and the narrower dtypes win on memory bandwidth — which is exactly
    // the claim the bench gate pins (f32 p50 < f64 p50, int8 < f32).
    let quant_items = args.get("quant-items", 100_000usize).max(1);
    let quant_k = args.get("quant-k", 64usize).max(1);
    let quant_users = 2048usize;
    let quant_requests = args.get("quant-requests", n_requests.min(300)).max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let qmodel = FactorModel::new(
        synth_factors(quant_users, quant_k, 4, &mut rng),
        synth_factors(quant_items, quant_k, 4, &mut rng),
        false,
    );
    let qdata = ocular_sparse::Dataset::from_matrix(ocular_sparse::CsrMatrix::empty(
        quant_users,
        quant_items,
    ));
    let mut quant_rows: Vec<(&'static str, Latency)> = Vec::new();
    for (name, quantize) in [
        ("f64", None),
        ("f32", Some(QuantDtype::F32)),
        ("int8", Some(QuantDtype::I8)),
    ] {
        let mut builder = EngineBuilder::from_model(qmodel.clone())
            .dataset(qdata.clone())
            .config(ServeConfig {
                default_m: m,
                candidates: CandidatePolicy::FullCatalog,
                ..Default::default()
            });
        if let Some(dtype) = quantize {
            builder = builder.quantization(dtype);
        }
        let engine = builder.build().expect("quantized engine");
        let lat = measure(quant_requests, |i| {
            std::hint::black_box(
                engine
                    .serve_one(&Request::Warm {
                        user: (i * 131) % quant_users,
                        m,
                    })
                    .unwrap()
                    .items
                    .len(),
            );
        });
        report(&format!("quant {quant_items}×{quant_k} {name}"), &lat);
        quant_rows.push((name, lat));
    }

    let lat_json = |l: &Latency| {
        obj(vec![
            ("p50_us", Json::Num(l.p50)),
            ("p90_us", Json::Num(l.p90)),
            ("p99_us", Json::Num(l.p99)),
        ])
    };
    let doc = obj(vec![
        ("bench", Json::Str("serve".into())),
        ("profile", Json::Str("powerlaw-b2b".into())),
        ("n_users", Json::Num(r.n_rows() as f64)),
        ("n_items", Json::Num(r.n_cols() as f64)),
        ("nnz", Json::Num(r.nnz() as f64)),
        ("m", Json::Num(m as f64)),
        ("requests", Json::Num(n_requests as f64)),
        ("train_seconds", Json::Num(train_seconds)),
        ("full_sort", lat_json(&lat_sort)),
        ("engine_full", lat_json(&lat_full)),
        ("engine_clusters", lat_json(&lat_clusters)),
        ("engine_cold", lat_json(&lat_cold)),
        (
            "mean_scored_items",
            Json::Num(scored_total as f64 / n_requests as f64),
        ),
        (
            "fallback_rate",
            Json::Num(fallbacks as f64 / n_requests as f64),
        ),
        ("batch_throughput_rps", Json::Num(throughput)),
        (
            "shard_scaling",
            obj(vec![
                ("baseline_1thread_rps", Json::Num(baseline_1thread_rps)),
                ("shards_1_rps", Json::Num(shard_rps[0])),
                ("shards_2_rps", Json::Num(shard_rps[1])),
                ("shards_4_rps", Json::Num(shard_rps[2])),
            ]),
        ),
        (
            "snapshot_load",
            obj(vec![
                ("text_seconds", Json::Num(load_text_s)),
                ("binary_seconds", Json::Num(load_binary_s)),
            ]),
        ),
        (
            "kinds",
            obj(kind_rows
                .iter()
                .map(|(kind, lat)| (*kind, lat_json(lat)))
                .collect()),
        ),
        (
            "quant",
            obj(vec![
                ("n_items", Json::Num(quant_items as f64)),
                ("k", Json::Num(quant_k as f64)),
                ("f64", lat_json(&quant_rows[0].1)),
                ("f32", lat_json(&quant_rows[1].1)),
                ("int8", lat_json(&quant_rows[2].1)),
            ]),
        ),
    ]);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write bench artifact");
    eprintln!("artifact → {out_path}");
}
