//! Minimal command-line flag parsing for the experiment binaries
//! (`--key value` pairs and bare `--flag`s; no external dependencies).

use ocular_datasets::profiles::Scale;
use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Args {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (tests).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Args {
        let mut args = Args::default();
        let tokens: Vec<String> = iter.into_iter().collect();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                let is_value = i + 1 < tokens.len() && !tokens[i + 1].starts_with("--");
                if is_value {
                    args.values.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.flags.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        args
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The dataset scale (`--scale small|medium|paper|<factor>`).
    pub fn scale(&self) -> Scale {
        match self.values.get("scale").map(String::as_str) {
            None | Some("small") => Scale::Small,
            Some("medium") => Scale::Medium,
            Some("paper") => Scale::Paper,
            Some(other) => other
                .parse::<f64>()
                .map(Scale::Factor)
                .unwrap_or(Scale::Small),
        }
    }

    /// Base RNG seed (`--seed`, default 0).
    pub fn seed(&self) -> u64 {
        self.get("seed", 0u64)
    }

    /// Number of problem instances to average over (`--instances`,
    /// default 3; the paper uses 10 — pass `--instances 10` to match).
    pub fn instances(&self) -> usize {
        self.get("instances", 3usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_iter(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = args("--seed 7 --tune --instances 10");
        assert_eq!(a.seed(), 7);
        assert!(a.flag("tune"));
        assert!(!a.flag("quick"));
        assert_eq!(a.instances(), 10);
    }

    #[test]
    fn scale_variants() {
        assert_eq!(args("").scale(), Scale::Small);
        assert_eq!(args("--scale medium").scale(), Scale::Medium);
        assert_eq!(args("--scale paper").scale(), Scale::Paper);
        assert_eq!(args("--scale 2.5").scale(), Scale::Factor(2.5));
        assert_eq!(args("--scale bogus").scale(), Scale::Small);
    }

    #[test]
    fn typed_get_with_default() {
        let a = args("--m 50");
        assert_eq!(a.get("m", 10usize), 50);
        assert_eq!(a.get("missing", 10usize), 10);
        assert_eq!(a.get("m", 0.5f64), 50.0);
    }

    #[test]
    fn instances_floor_one() {
        assert_eq!(args("--instances 0").instances(), 1);
    }
}
