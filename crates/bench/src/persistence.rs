//! Snapshot load-time measurement shared by the `probe` and
//! `serve_latency` bench bins — the numbers behind the v3 format's
//! "engine start-up is O(1), not a parse" claim, gated in CI by
//! `bench_gate` (binary must load strictly faster than text on the same
//! model, and neither may regress against the committed baseline).

use ocular_serve::{AnySnapshot, SnapshotFormat};
use ocular_sparse::IdMaps;
use std::time::Instant;

/// Median wall-clock seconds to load the snapshot from disk in each
/// format (`(text_seconds, binary_seconds)`), measured over `reps` runs
/// through the production loader ([`AnySnapshot::load_path`], which
/// sniffs magic bytes and memory-maps v3 containers).
pub fn snapshot_load_seconds(snap: &AnySnapshot, ids: Option<&IdMaps>, reps: usize) -> (f64, f64) {
    let dir = std::env::temp_dir();
    let stamp = std::process::id();
    let text_path = dir.join(format!("ocular-bench-{stamp}.v2snap"));
    let bin_path = dir.join(format!("ocular-bench-{stamp}.v3snap"));
    snap.save_path(&text_path, ids, SnapshotFormat::Text)
        .expect("write text snapshot");
    snap.save_path(&bin_path, ids, SnapshotFormat::Binary)
        .expect("write binary snapshot");

    let median_load = |path: &std::path::Path| -> f64 {
        let mut times: Vec<f64> = (0..reps.max(1))
            .map(|_| {
                let t0 = Instant::now();
                let loaded = AnySnapshot::load_path(path).expect("load snapshot");
                let dt = t0.elapsed().as_secs_f64();
                std::hint::black_box(loaded.0.kind());
                dt
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times[times.len() / 2]
    };
    let text_seconds = median_load(&text_path);
    let binary_seconds = median_load(&bin_path);
    let _ = std::fs::remove_file(&text_path);
    let _ = std::fs::remove_file(&bin_path);
    (text_seconds, binary_seconds)
}
