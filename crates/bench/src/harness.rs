//! Bridges between the model crates and the evaluation protocol.

use ocular_api::{Recommender, ScoreItems};
use ocular_core::{fit, FactorModel, OcularConfig, Weighting};
use ocular_eval::protocol::{evaluate, EvalReport};
use ocular_sparse::{CsrMatrix, Dataset};

/// [`FactorModel`] under a display name, so the Table I harness can carry
/// "OCuLaR" and "R-OCuLaR" columns side by side in one `dyn Recommender`
/// zoo (the model itself always reports `"OCuLaR"`).
pub struct OcularRecommender {
    /// The fitted model.
    pub model: FactorModel,
    name: &'static str,
}

impl OcularRecommender {
    /// Fits plain OCuLaR.
    pub fn fit_absolute(r: &Dataset, cfg: &OcularConfig) -> Self {
        let cfg = OcularConfig {
            weighting: Weighting::Absolute,
            ..cfg.clone()
        };
        OcularRecommender {
            model: fit(r, &cfg).model,
            name: "OCuLaR",
        }
    }

    /// Fits R-OCuLaR (relative weighting).
    pub fn fit_relative(r: &Dataset, cfg: &OcularConfig) -> Self {
        let cfg = OcularConfig {
            weighting: Weighting::Relative,
            ..cfg.clone()
        };
        OcularRecommender {
            model: fit(r, &cfg).model,
            name: "R-OCuLaR",
        }
    }

    /// Wraps an already fitted model.
    pub fn from_model(model: FactorModel, name: &'static str) -> Self {
        OcularRecommender { model, name }
    }
}

impl ScoreItems for OcularRecommender {
    fn name(&self) -> &'static str {
        self.name
    }

    fn n_users(&self) -> usize {
        self.model.n_users()
    }

    fn n_items(&self) -> usize {
        self.model.n_items()
    }

    fn score_user(&self, u: usize, out: &mut Vec<f64>) {
        self.model.score_user(u, out);
    }
}

impl Recommender for OcularRecommender {
    fn as_fold_in(&self) -> Option<&dyn ocular_api::FoldIn> {
        self.model.as_fold_in()
    }

    fn as_explain(&self) -> Option<&dyn ocular_api::Explain> {
        self.model.as_explain()
    }
}

/// Evaluates any [`Recommender`] under the paper's protocol at cutoff `m`
/// (thin alias for [`ocular_eval::protocol::evaluate`], kept for the bench
/// binaries' vocabulary).
pub fn evaluate_recommender(
    model: &dyn Recommender,
    train: &CsrMatrix,
    test: &CsrMatrix,
    m: usize,
) -> EvalReport {
    evaluate(model, train, test, m)
}

/// Default OCuLaR hyper-parameters for a dataset with `k_hint` planted
/// co-clusters (the harness's untuned setting; pass `--tune` to grid
/// search instead).
pub fn default_ocular_config(k_hint: usize, seed: u64) -> OcularConfig {
    OcularConfig {
        k: k_hint.max(2),
        lambda: 0.5,
        max_iters: 60,
        tol: 1e-4,
        seed,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_sparse::{Split, SplitConfig};

    #[test]
    fn adapter_scores_match_model() {
        let r = Dataset::from_matrix(
            CsrMatrix::from_pairs(4, 4, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (3, 3)]).unwrap(),
        );
        let rec = OcularRecommender::fit_absolute(&r, &default_ocular_config(2, 1));
        let mut via_trait = Vec::new();
        rec.score_user(0, &mut via_trait);
        let mut direct = Vec::new();
        rec.model.score_user(0, &mut direct);
        assert_eq!(via_trait, direct);
        assert_eq!(rec.name(), "OCuLaR");
    }

    #[test]
    fn evaluation_pipeline_runs_end_to_end() {
        let mut pairs = Vec::new();
        for b in 0..2 {
            for u in 0..8 {
                for i in 0..8 {
                    pairs.push((b * 8 + u, b * 8 + i));
                }
            }
        }
        let r = Dataset::from_matrix(CsrMatrix::from_pairs(16, 16, &pairs).unwrap());
        let split = Split::new(&r, &SplitConfig::default());
        let rec = OcularRecommender::fit_absolute(&split.train, &default_ocular_config(2, 3));
        let report = evaluate_recommender(&rec, &split.train, &split.test, 10);
        assert!(report.recall > 0.5, "block data should be easy: {report}");
    }
}
