//! Criterion microbenches of the computational kernels: the sum-trick vs
//! naive negative sums, the objective via sum-trick vs naive evaluation,
//! gradient computation, and the simulated GPU reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocular_core::gradient::{negative_sum, negative_sum_naive, LocalProblem, PosWeights};
use ocular_core::loss::{objective, objective_naive, user_weights};
use ocular_core::model::FactorModel;
use ocular_core::Weighting;
use ocular_datasets::planted::{generate, PlantedConfig};
use ocular_linalg::{ops, Matrix};
use ocular_parallel::kernel::block_dot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn setup(k: usize) -> (ocular_sparse::Dataset, Matrix, Matrix) {
    let d = generate(&PlantedConfig {
        n_users: 400,
        n_items: 300,
        k: 6,
        users_per_cluster: 80,
        items_per_cluster: 60,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(1);
    let mut uf = Matrix::zeros(400, k);
    let mut itf = Matrix::zeros(300, k);
    for v in uf.as_mut_slice().iter_mut().chain(itf.as_mut_slice()) {
        *v = rng.gen::<f64>() * 0.5;
    }
    (d.matrix, uf, itf)
}

fn bench_negative_sum(c: &mut Criterion) {
    let (r, uf, _) = setup(16);
    let rt = r.item_view();
    let sums = uf.column_sums();
    let mut buf = vec![0.0; 16];
    let mut group = c.benchmark_group("negative_sum");
    group.bench_function("sum_trick_all_items", |b| {
        b.iter(|| {
            for i in 0..rt.n_rows() {
                negative_sum(&uf, &sums, rt.row(i), &mut buf);
            }
            black_box(buf[0])
        })
    });
    group.bench_function("naive_all_items", |b| {
        b.iter(|| {
            for i in 0..rt.n_rows() {
                negative_sum_naive(&uf, rt.row(i), &mut buf);
            }
            black_box(buf[0])
        })
    });
    group.finish();
}

fn bench_objective(c: &mut Criterion) {
    let (r, uf, itf) = setup(16);
    let model = FactorModel::new(uf, itf, false);
    let w = user_weights(&r, Weighting::Absolute);
    let mut group = c.benchmark_group("objective");
    group.bench_function("sum_trick", |b| {
        b.iter(|| black_box(objective(&r, &model, 0.5, &w)))
    });
    group.bench_function("naive", |b| {
        b.iter(|| black_box(objective_naive(&r, &model, 0.5, &w)))
    });
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("item_gradient");
    for k in [8usize, 32, 128] {
        let (r, uf, itf) = setup(k);
        let rt = r.item_view();
        let sums = uf.column_sums();
        let weights = vec![1.0; r.n_rows()];
        let mut negsum = vec![0.0; k];
        let mut grad = vec![0.0; k];
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                for i in 0..rt.n_rows() {
                    negative_sum(&uf, &sums, rt.row(i), &mut negsum);
                    let problem = LocalProblem {
                        positives: rt.row(i),
                        other: &uf,
                        weights: PosWeights::PerEntity(&weights),
                        negsum: &negsum,
                        lambda: 0.5,
                        fixed_dim: None,
                    };
                    problem.gradient(itf.row(i), &mut grad);
                }
                black_box(grad[0])
            })
        });
    }
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a: Vec<f64> = (0..256).map(|_| rng.gen()).collect();
    let b_: Vec<f64> = (0..256).map(|_| rng.gen()).collect();
    let mut group = c.benchmark_group("dot256");
    group.bench_function("scalar", |b| b.iter(|| black_box(ops::dot(&a, &b_))));
    group.bench_function("block_warp32", |b| {
        b.iter(|| black_box(block_dot(&a, &b_, 32)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_negative_sum,
    bench_objective,
    bench_gradient,
    bench_reduction
);
criterion_main!(benches);
