//! Criterion benches for the `ocular-serve` request path: the retired
//! full-sort selection vs the bounded-heap kernel vs co-cluster candidate
//! generation, batched throughput, the quantized scoring kernels on a
//! 100k-item catalog (per-dtype rows: f64 vs f32 vs int8), and batched
//! scatter-gather serving through the sharded coordinator at 1/2/4
//! shards.

use criterion::{criterion_group, criterion_main, Criterion};
use ocular_core::{fit, recommend_top_m, FactorModel, OcularConfig, Recommendation};
use ocular_datasets::powerlaw::{generate, PowerLawConfig};
use ocular_serve::{
    CandidatePolicy, EngineBuilder, IndexConfig, QuantDtype, Request, ServeConfig, ShardedEngine,
    Snapshot,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// The pre-heap selection path: score everything, sort everything.
fn full_sort_reference(
    model: &ocular_core::FactorModel,
    r: &ocular_sparse::CsrMatrix,
    u: usize,
    m: usize,
) -> Vec<Recommendation> {
    let mut scores = Vec::new();
    model.score_user(u, &mut scores);
    let owned = r.row(u);
    let mut candidates: Vec<Recommendation> = scores
        .into_iter()
        .enumerate()
        .filter(|(i, _)| owned.binary_search_by(|&e| (e as usize).cmp(i)).is_err())
        .map(|(item, probability)| Recommendation { item, probability })
        .collect();
    candidates.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .expect("probabilities are finite")
            .then_with(|| a.item.cmp(&b.item))
    });
    candidates.truncate(m);
    candidates
}

fn bench_serve(c: &mut Criterion) {
    let data = generate(&PowerLawConfig {
        n_users: 800,
        n_items: 400,
        k: 8,
        target_nnz: 20_000,
        ..Default::default()
    });
    let r = data.matrix.clone();
    let model = fit(
        &r,
        &OcularConfig {
            k: 8,
            lambda: 0.5,
            max_iters: 20,
            seed: 0,
            ..Default::default()
        },
    )
    .model;
    let clusters = EngineBuilder::from_model(model.clone())
        .dataset(r.clone())
        .index_config(IndexConfig {
            rel: 0.3,
            floor: 100,
        })
        .config(ServeConfig {
            default_m: 50,
            candidates: CandidatePolicy::Clusters { min_candidates: 50 },
            ..Default::default()
        })
        .build()
        .unwrap();
    let full = EngineBuilder::from_model(model.clone())
        .dataset(r.clone())
        .index_config(IndexConfig {
            rel: 0.3,
            floor: 100,
        })
        .config(ServeConfig {
            default_m: 50,
            candidates: CandidatePolicy::FullCatalog,
            ..Default::default()
        })
        .build()
        .unwrap();
    let user = 17;

    let mut group = c.benchmark_group("serve_one");
    group.bench_function("full_sort_reference_top50", |b| {
        b.iter(|| black_box(full_sort_reference(&model, &r, user, 50).len()))
    });
    group.bench_function("heap_recommend_top50", |b| {
        b.iter(|| black_box(recommend_top_m(&model, &r, user, 50).len()))
    });
    group.bench_function("engine_full_catalog_top50", |b| {
        b.iter(|| {
            black_box(
                full.serve_one(&Request::Warm { user, m: 50 })
                    .unwrap()
                    .items
                    .len(),
            )
        })
    });
    group.bench_function("engine_clusters_top50", |b| {
        b.iter(|| {
            black_box(
                clusters
                    .serve_one(&Request::Warm { user, m: 50 })
                    .unwrap()
                    .items
                    .len(),
            )
        })
    });
    group.bench_function("engine_cold_start_top50", |b| {
        let basket: Vec<usize> = r.row(user).iter().map(|&i| i as usize).collect();
        b.iter(|| {
            black_box(
                clusters
                    .serve_one(&Request::Cold {
                        basket: basket.clone(),
                        m: 50,
                    })
                    .unwrap()
                    .items
                    .len(),
            )
        })
    });
    group.finish();

    let mut group = c.benchmark_group("serve_batch");
    group.sample_size(10);
    let requests: Vec<Request> = (0..r.n_rows())
        .map(|user| Request::Warm { user, m: 50 })
        .collect();
    group.bench_function("all_users_top50", |b| {
        b.iter(|| black_box(clusters.serve_batch(&requests).len()))
    });
    group.finish();

    // batched scatter-gather through the sharded coordinator: warm
    // requests hash-route to their owning shard, one worker per shard.
    // The 1-shard row is the coordinator-overhead reference; larger
    // counts show the partitioned scaling the serve_latency gate pins.
    let snapshot = Snapshot::build(
        model.clone(),
        &IndexConfig {
            rel: 0.3,
            floor: 100,
        },
    );
    let mut group = c.benchmark_group("scatter_gather_batch");
    group.sample_size(10);
    for n_shards in [1usize, 2, 4] {
        let coordinator = ShardedEngine::split(
            snapshot.clone(),
            &r,
            n_shards,
            ServeConfig {
                default_m: 50,
                candidates: CandidatePolicy::Clusters { min_candidates: 50 },
                ..Default::default()
            },
            1,
            None,
        )
        .unwrap();
        group.bench_function(format!("all_users_top50_{n_shards}_shards"), |b| {
            b.iter(|| black_box(coordinator.serve_batch(&requests).len()))
        });
    }
    group.finish();
}

/// Sparse non-negative synthetic factors — the same shape `serve_latency`
/// uses for its kernel section (training a 100k-item model here would
/// dominate the bench with setup time without changing what is measured).
fn synth_factors(rows: usize, k: usize, active: usize, rng: &mut StdRng) -> ocular_linalg::Matrix {
    let mut m = ocular_linalg::Matrix::zeros(rows, k);
    for r in 0..rows {
        let row = m.row_mut(r);
        for _ in 0..active {
            row[rng.gen_range(0..k)] += rng.gen::<f64>();
        }
    }
    m
}

/// Full-catalog scoring at 100k items × k=64, one row per serving dtype.
/// At this catalog size the scoring kernel — not candidate generation —
/// dominates, which is what separates the dtypes.
fn bench_quant_catalog(c: &mut Criterion) {
    let (n_items, k, n_users) = (100_000, 64, 512);
    let mut rng = StdRng::seed_from_u64(7);
    let model = FactorModel::new(
        synth_factors(n_users, k, 4, &mut rng),
        synth_factors(n_items, k, 4, &mut rng),
        false,
    );
    let data =
        ocular_sparse::Dataset::from_matrix(ocular_sparse::CsrMatrix::empty(n_users, n_items));
    let mut group = c.benchmark_group("quant_catalog_100k");
    group.sample_size(20);
    for (name, quantize) in [
        ("f64", None),
        ("f32", Some(QuantDtype::F32)),
        ("int8", Some(QuantDtype::I8)),
    ] {
        let mut builder = EngineBuilder::from_model(model.clone())
            .dataset(data.clone())
            .config(ServeConfig {
                default_m: 50,
                candidates: CandidatePolicy::FullCatalog,
                ..Default::default()
            });
        if let Some(dtype) = quantize {
            builder = builder.quantization(dtype);
        }
        let engine = builder.build().unwrap();
        let mut user = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                user = (user + 131) % n_users;
                black_box(
                    engine
                        .serve_one(&Request::Warm { user, m: 50 })
                        .unwrap()
                        .items
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve, bench_quant_catalog);
criterion_main!(benches);
