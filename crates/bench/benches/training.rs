//! Criterion benches of full training sweeps: linearity in nnz and K
//! (the microbench behind Figure 7) and sequential vs parallel half-sweeps
//! (the microbench behind Figure 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocular_core::{fit, OcularConfig};
use ocular_datasets::powerlaw::{generate, PowerLawConfig};
use ocular_parallel::fit_parallel;
use ocular_sparse::sample::sample_nnz_fraction;
use std::hint::black_box;

fn dataset() -> ocular_sparse::Dataset {
    generate(&PowerLawConfig {
        n_users: 1200,
        n_items: 500,
        k: 10,
        target_nnz: 30_000,
        ..Default::default()
    })
    .matrix
}

fn sweep_cfg(k: usize) -> OcularConfig {
    OcularConfig {
        k,
        lambda: 0.5,
        max_iters: 1, // exactly one sweep per measurement
        tol: 0.0,
        seed: 0,
        ..Default::default()
    }
}

fn bench_sweep_vs_nnz(c: &mut Criterion) {
    let r = dataset();
    let mut group = c.benchmark_group("sweep_vs_nnz");
    group.sample_size(10);
    for frac in [0.25f64, 0.5, 1.0] {
        let sub = ocular_sparse::Dataset::from_matrix(sample_nnz_fraction(&r, frac, 0));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}nnz", sub.nnz())),
            &sub,
            |b, sub| b.iter(|| black_box(fit(sub, &sweep_cfg(16)).history.iterations())),
        );
    }
    group.finish();
}

fn bench_sweep_vs_k(c: &mut Criterion) {
    let r = dataset();
    let mut group = c.benchmark_group("sweep_vs_k");
    group.sample_size(10);
    for k in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(fit(&r, &sweep_cfg(k)).history.iterations()))
        });
    }
    group.finish();
}

fn bench_sequential_vs_parallel(c: &mut Criterion) {
    let r = dataset();
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("sequential_sweep", |b| {
        b.iter(|| black_box(fit(&r, &sweep_cfg(32)).history.iterations()))
    });
    group.bench_function("parallel_sweep", |b| {
        b.iter(|| black_box(fit_parallel(&r, &sweep_cfg(32), None).history.iterations()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sweep_vs_nnz,
    bench_sweep_vs_k,
    bench_sequential_vs_parallel
);
criterion_main!(benches);
