//! Criterion benches of the serving-side paths: top-M recommendation,
//! explanation generation, kNN similarity precomputation and wALS sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use ocular_baselines::{ItemKnn, KnnConfig, ScoreItems, UserKnn, Wals, WalsConfig};
use ocular_core::{
    default_threshold, explain, extract_coclusters, fit, recommend_top_m, OcularConfig,
};
use ocular_datasets::powerlaw::{generate, PowerLawConfig};
use std::hint::black_box;

fn bench_serving(c: &mut Criterion) {
    let data = generate(&PowerLawConfig {
        n_users: 800,
        n_items: 400,
        k: 8,
        target_nnz: 20_000,
        ..Default::default()
    });
    let r = &data.matrix;
    let result = fit(
        r,
        &OcularConfig {
            k: 8,
            lambda: 0.5,
            max_iters: 20,
            seed: 0,
            ..Default::default()
        },
    );
    let clusters = extract_coclusters(&result.model, default_threshold());

    let mut group = c.benchmark_group("serving");
    group.bench_function("recommend_top50_one_user", |b| {
        b.iter(|| black_box(recommend_top_m(&result.model, r, 17, 50).len()))
    });
    group.bench_function("explain_one_recommendation", |b| {
        let rec = recommend_top_m(&result.model, r, 17, 1);
        let item = rec[0].item;
        b.iter(|| {
            black_box(
                explain(&result.model, r, &clusters, 17, item, 5)
                    .contributions
                    .len(),
            )
        })
    });
    group.bench_function("extract_coclusters", |b| {
        b.iter(|| black_box(extract_coclusters(&result.model, default_threshold()).len()))
    });
    group.finish();
}

fn bench_baseline_fits(c: &mut Criterion) {
    let data = generate(&PowerLawConfig {
        n_users: 600,
        n_items: 300,
        k: 8,
        target_nnz: 12_000,
        ..Default::default()
    });
    let r = &data.matrix;
    let mut group = c.benchmark_group("baseline_fit");
    group.sample_size(10);
    group.bench_function("user_knn", |b| {
        b.iter(|| black_box(UserKnn::fit(r, &KnnConfig::default()).n_users()))
    });
    group.bench_function("item_knn", |b| {
        b.iter(|| black_box(ItemKnn::fit(r, &KnnConfig::default()).n_items()))
    });
    group.bench_function("wals_3_sweeps", |b| {
        b.iter(|| {
            black_box(
                Wals::fit(
                    r,
                    &WalsConfig {
                        k: 8,
                        iters: 3,
                        ..Default::default()
                    },
                )
                .objective_trace
                .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serving, bench_baseline_fits);
criterion_main!(benches);
