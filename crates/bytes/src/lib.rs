//! # ocular-bytes
//!
//! Byte-region primitives for **zero-copy model persistence** — the
//! foundation of the `ocular-snapshot v3` binary format.
//!
//! * [`ModelBytes`] — an immutable, 8-byte-aligned byte region that is
//!   either **owned** (read or assembled in memory) or **memory-mapped**
//!   read-only from a file. Mapping makes engine start-up O(1) in model
//!   size and lets every serve process on a host share one page cache.
//! * [`F64Buf`] / [`U64Buf`] / [`U32Buf`] / [`F32Buf`] / [`I8Buf`] —
//!   typed slices that either own a
//!   `Vec<T>` or **borrow** a range of a shared [`ModelBytes`] region.
//!   Large model payloads (factor matrices, cluster-index CSR arrays,
//!   id-map tables) live in these, so loading a binary snapshot
//!   reinterprets file bytes in place instead of re-allocating.
//! * [`fnv1a64`] — the checksum/hash primitive shared by the snapshot
//!   container (trailing integrity checksum) and the id-map raw hash
//!   tables.
//!
//! This is the **only** crate in the workspace that contains `unsafe`
//! code: the mmap syscall wrapper, the `&[u8]` → `&[T]`
//! reinterpretation, and the `epoll`/`eventfd`/signal wrappers behind the
//! network serving tier ([`net`], Linux only). Every unsafe block is
//! small and carries a SAFETY comment; every crate above this one keeps
//! `#![forbid(unsafe_code)]`.
//!
//! Zero-copy reinterpretation is only performed on little-endian targets
//! whose region satisfies the type's alignment (the owned backing store
//! is 64-byte aligned, mmap bases are page aligned, and the container's
//! section layout guarantees 8-byte element alignment).
//! On big-endian targets the typed constructors transparently fall back
//! to decoding an owned copy, so the on-disk format is portable while the
//! fast path costs nothing where it matters.

#![warn(missing_docs)]

#[cfg(target_os = "linux")]
pub mod net;

use std::sync::Arc;

/// FNV-1a 64-bit hash/checksum over a byte slice.
///
/// Used as the v3 snapshot container's trailing integrity checksum and as
/// the bucket hash of the id-map raw tables. Not cryptographic — it
/// detects truncation and bit corruption, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// [`fnv1a64`] of one `u64` key's little-endian bytes — the id-map raw
/// tables' bucket hash, shared by the writer and the prober so the table
/// layout is part of the on-disk contract.
#[inline]
pub fn fnv1a64_key(key: u64) -> u64 {
    fnv1a64(&key.to_le_bytes())
}

/// Stable shard assignment of one external id: `fnv1a64_key(id) mod
/// n_shards`. This is the *one* partitioning rule the whole workspace
/// agrees on — dataset sharding, sharded snapshot files, and the
/// scatter-gather serving coordinator all call this function, so a user
/// hashed at save time is found by the router at serve time without any
/// lookup table travelling between them.
///
/// # Panics
/// Panics if `n_shards == 0`.
#[inline]
pub fn shard_of_key(key: u64, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard count must be positive");
    (fnv1a64_key(key) % n_shards as u64) as usize
}

/// Owned byte storage whose base address is 64-byte aligned (backed by an
/// over-allocated `Vec<u64>` with the base nudged up to a cache-line
/// boundary), so typed views satisfy `f64`/`u64` alignment and blocked
/// scoring kernels see cache-line-aligned factor rows, matching the
/// page-aligned mmap path.
struct AlignedBytes {
    words: Vec<u64>,
    /// Byte offset of the first payload byte within `words` (base is
    /// 8-aligned; skipping `skip` bytes lands on a 64-byte boundary).
    skip: usize,
    len: usize,
}

impl AlignedBytes {
    fn from_bytes(bytes: &[u8]) -> AlignedBytes {
        // 7 spare words guarantee a 64-aligned base within the allocation
        let n_words = bytes.len().div_ceil(8) + 7;
        let mut words = vec![0u64; n_words];
        let base = words.as_ptr() as usize;
        let skip = base.next_multiple_of(64) - base;
        if !bytes.is_empty() {
            // SAFETY: `words` owns `n_words * 8` initialised bytes and u64
            // has no invalid bit patterns; we only copy raw bytes in.
            #[allow(unsafe_code)]
            let dst = unsafe {
                std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), n_words * 8)
            };
            dst[skip..skip + bytes.len()].copy_from_slice(bytes);
        }
        AlignedBytes {
            words,
            skip,
            len: bytes.len(),
        }
    }

    fn as_bytes(&self) -> &[u8] {
        // SAFETY: the Vec owns at least `skip + len` initialised bytes
        // (`skip + len <= words.len() * 8` by construction) and u8 has
        // alignment 1.
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>().add(self.skip), self.len)
        }
    }
}

/// Read-only memory mapping of a whole file (Linux/Unix 64-bit only; the
/// portable fallback reads the file into owned memory instead).
#[cfg(all(unix, target_pointer_width = "64"))]
mod mapping {
    use core::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    // Bound directly against libc's symbols (always linked by std on
    // unix) instead of adding a dependency. Constants per POSIX/Linux;
    // `MAP_PRIVATE` and `PROT_READ` share values across the unix family.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// An owned read-only mapping; unmapped on drop.
    pub(crate) struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never mutated or remapped after
    // construction, so shared references to its bytes are safe to send and
    // share across threads.
    #[allow(unsafe_code)]
    unsafe impl Send for Mmap {}
    #[allow(unsafe_code)]
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `file` read-only in full. Fails on empty files (mmap of
        /// length 0 is invalid) — callers fall back to an owned read.
        pub(crate) fn map(file: &File) -> std::io::Result<Mmap> {
            let len = file.metadata()?.len();
            let len = usize::try_from(len).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large")
            })?;
            if len == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "cannot map an empty file",
                ));
            }
            // SAFETY: requesting a fresh PROT_READ private mapping of a
            // valid open fd; the kernel picks the address. The result is
            // checked against MAP_FAILED before use.
            #[allow(unsafe_code)]
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as usize == usize::MAX {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mmap { ptr, len })
        }

        pub(crate) fn as_bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `drop` unmaps it; `&self` borrows keep it
            // alive. Page alignment satisfies every primitive alignment.
            #[allow(unsafe_code)]
            unsafe {
                std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len)
            }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact region this struct owns, once.
            #[allow(unsafe_code)]
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

enum RegionRepr {
    Owned(AlignedBytes),
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(mapping::Mmap),
}

/// An immutable byte region holding a binary model snapshot — **owned or
/// memory-mapped** — with a 64-byte-aligned base address either way
/// (owned storage is nudged to a cache-line boundary; mappings are page
/// aligned).
///
/// The owned form backs in-memory round-trips and the portable fallback;
/// the mapped form is the zero-copy serving path: `N` engine processes
/// mapping the same snapshot share one page cache, and start-up touches
/// no per-model heap allocations for the large payloads.
pub struct ModelBytes {
    repr: RegionRepr,
}

impl ModelBytes {
    /// Wraps owned bytes (copied once into 64-aligned storage).
    pub fn from_vec(bytes: Vec<u8>) -> ModelBytes {
        ModelBytes {
            repr: RegionRepr::Owned(AlignedBytes::from_bytes(&bytes)),
        }
    }

    /// Reads a whole file into an owned region.
    pub fn read_file(path: &std::path::Path) -> std::io::Result<ModelBytes> {
        Ok(ModelBytes::from_vec(std::fs::read(path)?))
    }

    /// Maps a file read-only when the platform supports it, falling back
    /// to [`ModelBytes::read_file`] (empty files, unsupported targets).
    pub fn map_file(path: &std::path::Path) -> std::io::Result<ModelBytes> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            let file = std::fs::File::open(path)?;
            match mapping::Mmap::map(&file) {
                Ok(m) => Ok(ModelBytes {
                    repr: RegionRepr::Mapped(m),
                }),
                Err(_) => ModelBytes::read_file(path),
            }
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        ModelBytes::read_file(path)
    }

    /// The region's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.repr {
            RegionRepr::Owned(b) => b.as_bytes(),
            #[cfg(all(unix, target_pointer_width = "64"))]
            RegionRepr::Mapped(m) => m.as_bytes(),
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the region is a file mapping (as opposed to owned memory).
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            RegionRepr::Owned(_) => false,
            #[cfg(all(unix, target_pointer_width = "64"))]
            RegionRepr::Mapped(_) => true,
        }
    }
}

impl std::fmt::Debug for ModelBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelBytes")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for u64 {}
    impl Sealed for u32 {}
    impl Sealed for f32 {}
    impl Sealed for i8 {}
}

/// Plain-old-data element types a [`PodBuf`] can view: fixed-width,
/// alignment ≤ 8, no invalid bit patterns, stored little-endian on disk.
/// Sealed — exactly `f64`, `u64`, `u32`, `f32` and `i8`.
pub trait Pod: sealed::Sealed + Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Element width in bytes.
    const WIDTH: usize;
    /// Decodes one element from its little-endian bytes.
    fn from_le(bytes: &[u8]) -> Self;
    /// Appends the element's little-endian bytes.
    fn write_le(self, out: &mut Vec<u8>);
}

impl Pod for f64 {
    const WIDTH: usize = 8;
    fn from_le(bytes: &[u8]) -> f64 {
        f64::from_le_bytes(bytes.try_into().expect("width-checked chunk"))
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Pod for u64 {
    const WIDTH: usize = 8;
    fn from_le(bytes: &[u8]) -> u64 {
        u64::from_le_bytes(bytes.try_into().expect("width-checked chunk"))
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Pod for u32 {
    const WIDTH: usize = 4;
    fn from_le(bytes: &[u8]) -> u32 {
        u32::from_le_bytes(bytes.try_into().expect("width-checked chunk"))
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Pod for f32 {
    const WIDTH: usize = 4;
    fn from_le(bytes: &[u8]) -> f32 {
        f32::from_le_bytes(bytes.try_into().expect("width-checked chunk"))
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Pod for i8 {
    const WIDTH: usize = 1;
    fn from_le(bytes: &[u8]) -> i8 {
        bytes[0] as i8
    }
    fn write_le(self, out: &mut Vec<u8>) {
        out.push(self as u8);
    }
}

enum BufRepr<T: Pod> {
    Owned(Vec<T>),
    Shared {
        region: Arc<ModelBytes>,
        /// Byte offset of the first element within the region.
        offset: usize,
        /// Element count.
        len: usize,
    },
}

/// A typed slice that either owns its elements or **borrows** them from a
/// shared [`ModelBytes`] region — the owned-or-borrowed abstraction the
/// zero-copy load path threads through factor matrices, cluster indices
/// and id maps. Dereferences to `&[T]` either way.
pub struct PodBuf<T: Pod> {
    repr: BufRepr<T>,
}

/// `f64` payload buffer (factor matrices, score tables, objective traces).
pub type F64Buf = PodBuf<f64>;
/// `u64` payload buffer (external-id tables, CSR row pointers).
pub type U64Buf = PodBuf<u64>;
/// `u32` payload buffer (item-index lists, id-map table values).
pub type U32Buf = PodBuf<u32>;
/// `f32` payload buffer (quantized factor matrices, per-row scales).
pub type F32Buf = PodBuf<f32>;
/// `i8` payload buffer (int8-quantized factor matrices).
pub type I8Buf = PodBuf<i8>;

impl<T: Pod> PodBuf<T> {
    /// A typed view of `n` elements starting `byte_offset` bytes into the
    /// region. Zero-copy (keeps an `Arc` to the region) when the target is
    /// little-endian and the address satisfies `T`'s alignment; otherwise
    /// decodes an owned copy. Errors when the range exceeds the region.
    pub fn from_region(
        region: &Arc<ModelBytes>,
        byte_offset: usize,
        n: usize,
    ) -> Result<PodBuf<T>, String> {
        let n_bytes = n
            .checked_mul(T::WIDTH)
            .ok_or_else(|| "section element count overflows".to_string())?;
        let end = byte_offset
            .checked_add(n_bytes)
            .ok_or_else(|| "section range overflows".to_string())?;
        if end > region.len() {
            return Err(format!(
                "section range {byte_offset}..{end} exceeds region of {} bytes",
                region.len()
            ));
        }
        let base = region.as_bytes()[byte_offset..end].as_ptr();
        if cfg!(target_endian = "little") && (base as usize) % std::mem::align_of::<T>() == 0 {
            Ok(PodBuf {
                repr: BufRepr::Shared {
                    region: Arc::clone(region),
                    offset: byte_offset,
                    len: n,
                },
            })
        } else {
            // portable fallback: decode little-endian elements
            let bytes = &region.as_bytes()[byte_offset..end];
            let vals = bytes.chunks_exact(T::WIDTH).map(T::from_le).collect();
            Ok(PodBuf {
                repr: BufRepr::Owned(vals),
            })
        }
    }

    /// The elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            BufRepr::Owned(v) => v,
            BufRepr::Shared {
                region,
                offset,
                len,
            } => {
                let bytes = &region.as_bytes()[*offset..*offset + *len * T::WIDTH];
                // SAFETY: constructed only on little-endian targets with
                // `bytes.as_ptr()` aligned for `T` (checked in
                // `from_region`), covering exactly `len` elements of a
                // type with no invalid bit patterns; the borrow of
                // `region` through `&self` keeps the mapping alive.
                #[allow(unsafe_code)]
                unsafe {
                    std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), *len)
                }
            }
        }
    }

    /// Whether the buffer borrows a shared region (zero-copy) rather than
    /// owning its elements.
    pub fn is_shared(&self) -> bool {
        matches!(self.repr, BufRepr::Shared { .. })
    }

    /// Mutable access, promoting a shared buffer to an owned copy first
    /// (copy-on-write; shared regions are immutable).
    pub fn make_owned(&mut self) -> &mut Vec<T> {
        if let BufRepr::Shared { .. } = self.repr {
            self.repr = BufRepr::Owned(self.as_slice().to_vec());
        }
        match &mut self.repr {
            BufRepr::Owned(v) => v,
            BufRepr::Shared { .. } => unreachable!("promoted above"),
        }
    }

    /// Consumes the buffer into an owned `Vec` (copies when shared).
    pub fn into_vec(mut self) -> Vec<T> {
        std::mem::take(self.make_owned())
    }
}

impl<T: Pod> From<Vec<T>> for PodBuf<T> {
    fn from(v: Vec<T>) -> PodBuf<T> {
        PodBuf {
            repr: BufRepr::Owned(v),
        }
    }
}

impl<T: Pod> Default for PodBuf<T> {
    fn default() -> Self {
        PodBuf {
            repr: BufRepr::Owned(Vec::new()),
        }
    }
}

impl<T: Pod> std::ops::Deref for PodBuf<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> Clone for PodBuf<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            BufRepr::Owned(v) => PodBuf {
                repr: BufRepr::Owned(v.clone()),
            },
            BufRepr::Shared {
                region,
                offset,
                len,
            } => PodBuf {
                repr: BufRepr::Shared {
                    region: Arc::clone(region),
                    offset: *offset,
                    len: *len,
                },
            },
        }
    }
}

impl<T: Pod> PartialEq for PodBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod> std::fmt::Debug for PodBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PodBuf")
            .field("len", &self.as_slice().len())
            .field("shared", &self.is_shared())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // classic FNV-1a 64 test vectors
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn owned_region_round_trips_bytes() {
        let bytes: Vec<u8> = (0..23u8).collect();
        let region = ModelBytes::from_vec(bytes.clone());
        assert_eq!(region.as_bytes(), &bytes[..]);
        assert_eq!(region.len(), 23);
        assert!(!region.is_mapped());
        // base address is cache-line-aligned so typed views can borrow
        // and blocked kernels see 64-aligned rows
        assert_eq!(region.as_bytes().as_ptr() as usize % 64, 0);
    }

    #[test]
    fn owned_region_base_is_64_aligned_across_sizes() {
        for len in [1usize, 7, 8, 63, 64, 65, 4096 + 13] {
            let bytes: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let region = ModelBytes::from_vec(bytes.clone());
            assert_eq!(
                region.as_bytes().as_ptr() as usize % 64,
                0,
                "len {len}: owned base must be 64-aligned"
            );
            assert_eq!(region.as_bytes(), &bytes[..]);
        }
    }

    #[test]
    fn f32_and_i8_views_borrow_and_decode() {
        let mut bytes = Vec::new();
        for v in [1.5f32, -0.25, 3.0e10] {
            v.write_le(&mut bytes);
        }
        for v in [-128i8, -1, 0, 127] {
            v.write_le(&mut bytes);
        }
        let region = Arc::new(ModelBytes::from_vec(bytes));
        let f = F32Buf::from_region(&region, 0, 3).unwrap();
        assert_eq!(&*f, &[1.5f32, -0.25, 3.0e10]);
        assert_eq!(f.is_shared(), cfg!(target_endian = "little"));
        let q = I8Buf::from_region(&region, 12, 4).unwrap();
        assert_eq!(&*q, &[-128i8, -1, 0, 127]);
        // out-of-range rejected
        assert!(I8Buf::from_region(&region, 12, 5).is_err());
    }

    #[test]
    fn empty_region() {
        let region = ModelBytes::from_vec(Vec::new());
        assert!(region.is_empty());
        assert_eq!(region.as_bytes(), &[] as &[u8]);
    }

    #[test]
    fn typed_views_borrow_and_decode() {
        let vals = [1.5f64, -2.25, 1e300, f64::MIN_POSITIVE];
        let mut bytes = Vec::new();
        for v in vals {
            v.write_le(&mut bytes);
        }
        bytes.extend_from_slice(&7u32.to_le_bytes());
        let region = Arc::new(ModelBytes::from_vec(bytes));
        let f = F64Buf::from_region(&region, 0, 4).unwrap();
        assert_eq!(&*f, &vals);
        assert_eq!(f.is_shared(), cfg!(target_endian = "little"));
        let u = U32Buf::from_region(&region, 32, 1).unwrap();
        assert_eq!(&*u, &[7]);
        // out-of-range rejected
        assert!(F64Buf::from_region(&region, 0, 5).is_err());
        assert!(U32Buf::from_region(&region, 36, 1).is_err());
    }

    #[test]
    fn make_owned_promotes_and_preserves() {
        let mut bytes = Vec::new();
        for v in [10u64, 20, 30] {
            v.write_le(&mut bytes);
        }
        let region = Arc::new(ModelBytes::from_vec(bytes));
        let mut buf = U64Buf::from_region(&region, 0, 3).unwrap();
        let snapshot = buf.to_vec();
        buf.make_owned().push(40);
        assert!(!buf.is_shared());
        assert_eq!(&buf[..3], &snapshot[..]);
        assert_eq!(buf.into_vec(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn map_file_round_trips_and_reports_mapping() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ocular-bytes-test-{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096 + 13).collect();
        std::fs::write(&path, &payload).unwrap();
        let mapped = ModelBytes::map_file(&path).unwrap();
        assert_eq!(mapped.as_bytes(), &payload[..]);
        if cfg!(all(unix, target_pointer_width = "64")) {
            assert!(mapped.is_mapped());
        }
        let read = ModelBytes::read_file(&path).unwrap();
        assert_eq!(read.as_bytes(), mapped.as_bytes());
        assert!(!read.is_mapped());
        drop(mapped);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn map_file_of_empty_file_falls_back_to_owned() {
        let path =
            std::env::temp_dir().join(format!("ocular-bytes-empty-{}.bin", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let region = ModelBytes::map_file(&path).unwrap();
        assert!(region.is_empty());
        assert!(!region.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }
}
