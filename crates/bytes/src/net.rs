//! Low-level non-blocking I/O primitives for the network serving tier
//! (Linux only): a thin `epoll` wrapper, an `eventfd` wake-up channel and
//! a process shutdown flag driven by `SIGINT`/`SIGTERM`.
//!
//! The build environment is offline, so — same spirit as the [`crate`]
//! mmap wrapper — the syscalls are bound directly against libc's symbols
//! (always linked by std on unix) instead of pulling in `libc`/`mio`/
//! `tokio`. Every unsafe block is small and carries a SAFETY comment;
//! every crate above `ocular-bytes` keeps `#![forbid(unsafe_code)]` and
//! consumes these types through safe APIs only.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn signal(signum: i32, handler: usize) -> usize;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

const SIGHUP: i32 = 1;
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
/// packs it there so 32-bit and 64-bit userlands share one layout);
/// naturally aligned everywhere else.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// Readiness interest for a registered file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable (or the peer half-closes).
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — a connection with buffered output.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        // EPOLLRDHUP rides along with read interest only: a write-only
        // registration (connection flushing its tail after the peer
        // half-closed) must not level-trigger on the half-close forever.
        let mut m = 0;
        if self.readable {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Input readiness (data to read, or a pending accept).
    pub readable: bool,
    /// Output readiness.
    pub writable: bool,
    /// Error/hang-up condition — the connection should be torn down after
    /// draining whatever still reads.
    pub closed: bool,
}

/// A level-triggered `epoll` instance owning its kernel fd.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; the result is checked.
        #[allow(unsafe_code)]
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
        // SAFETY: `ev` is a live, properly laid out epoll_event for the
        // duration of the call; the kernel copies it before returning.
        #[allow(unsafe_code)]
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Re-arms an already registered `fd` with a new interest set.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Removes `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Waits up to `timeout_ms` (−1 = forever) and appends readiness
    /// events to `out`. Interruption by a signal (`EINTR`) returns
    /// normally with no events, so callers re-check their shutdown flag
    /// on every iteration.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        const MAX_EVENTS: usize = 256;
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        // SAFETY: `buf` is a valid writable array of MAX_EVENTS
        // epoll_event structs; the kernel writes at most that many.
        #[allow(unsafe_code)]
        let n = unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in &buf[..n as usize] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: closing the fd this struct owns, exactly once.
        #[allow(unsafe_code)]
        unsafe {
            close(self.fd);
        }
    }
}

/// A non-blocking `eventfd` — the cross-thread wake-up channel that lets
/// worker threads interrupt an [`Epoll::wait`] (register its
/// [`EventFd::raw_fd`] for read interest, [`EventFd::notify`] from any
/// thread, [`EventFd::drain`] on wake).
pub struct EventFd {
    fd: RawFd,
}

// SAFETY: the wrapped fd is just an integer handle; eventfd read/write
// are thread-safe kernel operations.
#[allow(unsafe_code)]
unsafe impl Send for EventFd {}
#[allow(unsafe_code)]
unsafe impl Sync for EventFd {}

impl EventFd {
    /// Creates a non-blocking eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: eventfd takes no pointers; the result is checked.
        #[allow(unsafe_code)]
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The raw fd, for registration with an [`Epoll`].
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the eventfd counter, waking any epoll waiting on it.
    pub fn notify(&self) {
        let one = 1u64.to_ne_bytes();
        // SAFETY: writing 8 bytes from a live stack buffer to an owned fd.
        // An EAGAIN (counter saturated) still leaves the fd readable, so
        // the wake-up is delivered either way and the result is ignorable.
        #[allow(unsafe_code)]
        unsafe {
            write(self.fd, one.as_ptr(), one.len());
        }
    }

    /// Resets the counter to 0 (returns the number of notifications
    /// consumed, 0 when none were pending).
    pub fn drain(&self) -> u64 {
        let mut buf = [0u8; 8];
        // SAFETY: reading at most 8 bytes into a live stack buffer from an
        // owned non-blocking fd.
        #[allow(unsafe_code)]
        let n = unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
        if n == 8 {
            u64::from_ne_bytes(buf)
        } else {
            0
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: closing the fd this struct owns, exactly once.
        #[allow(unsafe_code)]
        unsafe {
            close(self.fd);
        }
    }
}

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_sig: i32) {
    // async-signal-safe: a single relaxed atomic store
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Installs `SIGINT`/`SIGTERM` handlers that set a process-wide flag and
/// returns that flag. Event loops poll it between waits (signal delivery
/// also interrupts a blocking `epoll_wait` with `EINTR`), so `kill -TERM`
/// produces a clean drain-and-exit instead of an abrupt kill.
///
/// Idempotent; the flag can also be raised programmatically for tests.
pub fn shutdown_flag() -> &'static AtomicBool {
    // SAFETY: signal() installs an async-signal-safe handler (it only
    // stores to an atomic). Re-installation is harmless.
    #[allow(unsafe_code)]
    unsafe {
        signal(SIGINT, on_shutdown_signal as *const () as usize);
        signal(SIGTERM, on_shutdown_signal as *const () as usize);
    }
    &SHUTDOWN
}

static RELOAD: AtomicBool = AtomicBool::new(false);

extern "C" fn on_reload_signal(_sig: i32) {
    // async-signal-safe: a single relaxed atomic store
    RELOAD.store(true, Ordering::Relaxed);
}

/// Installs a `SIGHUP` handler that sets a process-wide reload-request
/// flag and returns that flag — the classic daemon convention for
/// "re-read your configuration / pick up the new artifact". The serving
/// event loop polls it between waits and treats it exactly like a
/// `POST /admin/reload`.
///
/// Consumers take the request with [`take_reload_request`] (swap-and-
/// clear) so one signal triggers exactly one reload. Idempotent; the
/// flag can also be raised programmatically for tests.
pub fn reload_flag() -> &'static AtomicBool {
    // SAFETY: signal() installs an async-signal-safe handler (it only
    // stores to an atomic). Re-installation is harmless.
    #[allow(unsafe_code)]
    unsafe {
        signal(SIGHUP, on_reload_signal as *const () as usize);
    }
    &RELOAD
}

/// Atomically consumes a pending reload request: returns `true` (and
/// clears the flag) if a `SIGHUP` arrived since the last call.
pub fn take_reload_request(flag: &AtomicBool) -> bool {
    flag.swap(false, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), 42, Interest::READ).unwrap();

        let mut events = Vec::new();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no wake-up pending yet");

        ev.notify();
        ev.notify();
        ep.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);
        assert_eq!(ev.drain(), 2);

        // drained: level-triggered readiness is gone
        events.clear();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn listener_and_stream_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), 1, Interest::READ).unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        ep.wait(&mut events, 2000).unwrap();
        assert!(
            events.iter().any(|e| e.token == 1 && e.readable),
            "pending accept must surface as readable"
        );

        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        ep.add(server_side.as_raw_fd(), 2, Interest::READ).unwrap();
        client.write_all(b"ping").unwrap();
        events.clear();
        ep.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));

        // interest modification round-trips: write-readiness on an idle
        // socket surfaces immediately
        ep.modify(server_side.as_raw_fd(), 2, Interest::READ_WRITE)
            .unwrap();
        events.clear();
        ep.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));
        ep.delete(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn reload_flag_swap_and_clear() {
        let flag = reload_flag();
        assert!(!take_reload_request(flag), "no request pending initially");
        flag.store(true, Ordering::Relaxed);
        assert!(take_reload_request(flag), "pending request consumed");
        assert!(
            !take_reload_request(flag),
            "one signal triggers exactly one reload"
        );
    }

    #[test]
    fn shutdown_flag_is_settable() {
        let flag = shutdown_flag();
        flag.store(true, Ordering::Relaxed);
        assert!(flag.load(Ordering::Relaxed));
        flag.store(false, Ordering::Relaxed);
        assert!(!flag.load(Ordering::Relaxed));
    }
}
