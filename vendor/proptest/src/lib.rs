//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! range/tuple strategies, [`strategy::Strategy::prop_map`] /
//! [`strategy::Strategy::prop_flat_map`], [`collection::vec`] /
//! [`collection::btree_set`], [`prelude::any`], deterministic
//! [`test_runner::TestRunner`]s and [`strategy::ValueTree`].
//!
//! Differences from upstream, deliberate for an offline test shim:
//! * **No shrinking** — a failing case reports its generated inputs via the
//!   panic message instead of a minimised counterexample.
//! * **Deterministic seeds** — every test derives its RNG stream from the
//!   case index, so failures reproduce exactly under `cargo test`.
//! * Default case count is 64 (upstream: 256) to keep CI latency sane;
//!   override per test block with `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategies: value generators with combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRunner;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy: Sized {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Draws a value tree (no shrinking: the tree is a single value).
        fn new_tree(&self, runner: &mut TestRunner) -> Result<SingleValueTree<Self::Value>, String>
        where
            Self::Value: Clone,
        {
            Ok(SingleValueTree {
                value: self.generate(runner.rng()),
            })
        }

        /// Maps generated values through `f`.
        fn prop_map<F, O>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then draws from the strategy
        /// `f` builds from it.
        fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
        where
            F: Fn(Self::Value) -> S,
            S: Strategy,
        {
            FlatMap { inner: self, f }
        }
    }

    /// A generated value; upstream trees also know how to shrink, this one
    /// only carries the current value.
    pub trait ValueTree {
        /// The carried type.
        type Value;

        /// The current (here: only) value.
        fn current(&self) -> Self::Value;
    }

    /// The only [`ValueTree`] this shim produces.
    #[derive(Debug, Clone)]
    pub struct SingleValueTree<T> {
        value: T,
    }

    impl<T: Clone> ValueTree for SingleValueTree<T> {
        type Value = T;

        fn current(&self) -> T {
            self.value.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> S2,
        S2: Strategy,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.gen_range(self.start..self.end)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if lo == hi {
                        return lo;
                    }
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    let offset = rng.gen_range(0u64..span);
                    ((lo as i128) + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.start..self.end)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            if lo == hi {
                return lo;
            }
            lo + rng.gen::<f64>() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $ix:tt),+),)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$ix.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A / 0),
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3),
        (A / 0, B / 1, C / 2, D / 3, E / 4),
    );

    /// Size specification for collection strategies: an exact count or a
    /// range of counts.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi_exclusive {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi_exclusive)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end.max(r.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// `Vec` strategy; see [`crate::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy; see [`crate::collection::btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // bounded retries: duplicates don't loop forever on tiny domains
            let mut budget = target.saturating_mul(20) + 16;
            while out.len() < target && budget > 0 {
                out.insert(self.element.generate(rng));
                budget -= 1;
            }
            out
        }
    }

    /// Strategy for [`crate::prelude::any`], one value type per impl.
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the whole domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_word {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_word!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // finite, sign-symmetric, spanning many magnitudes
            let mag = rng.gen::<f64>() * 200.0 - 100.0;
            mag * (10f64).powi(rng.gen_range(-3i32..4))
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{BTreeSetStrategy, SizeRange, Strategy, VecStrategy};

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// A `BTreeSet` with (up to) a drawn number of distinct elements.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test execution: configs, runners, and case-level errors.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // upstream defaults to 256; 64 keeps single-core CI latency sane
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed test case (the `Err` side of a property body).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives a property: owns the config and the deterministic RNG.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// Runner with the given config and the deterministic base seed.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(0x0CCA_12AB),
            }
        }

        /// The fully deterministic runner (fixed seed, default config) —
        /// mirrors `proptest::test_runner::TestRunner::deterministic()`.
        pub fn deterministic() -> Self {
            Self::new(ProptestConfig::default())
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The runner's RNG (strategies draw from this).
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }

        /// Reseeds deterministically for case `index` so each case's stream
        /// is independent of how much entropy earlier cases consumed.
        pub fn start_case(&mut self, index: u32) {
            self.rng = StdRng::seed_from_u64(
                0x0CCA_12AB ^ u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
        }
    }
}

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::strategy::{AnyStrategy, Arbitrary, Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    use std::marker::PhantomData;

    /// Strategy over a type's whole domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

/// Asserts a condition inside a property body; on failure the case errors
/// (no shrinking) with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::proptest!(@run $config; $name; $($arg in $strat),+; $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
    (@run $config:expr; $name:ident; $($arg:pat in $strat:expr),+; $body:block) => {{
        let config: $crate::test_runner::ProptestConfig = $config;
        let mut runner = $crate::test_runner::TestRunner::new(config);
        for case in 0..runner.cases() {
            runner.start_case(case);
            let ($($arg,)+) =
                ($($crate::strategy::Strategy::generate(&($strat), runner.rng()),)+);
            let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| { $body ::std::result::Result::Ok(()) })();
            if let ::std::result::Result::Err(e) = outcome {
                panic!(
                    "proptest property `{}` failed at case {} of {}: {}",
                    stringify!($name), case, runner.cases(), e
                );
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_combinators_generate_in_bounds() {
        let strat = (1usize..5, -2.0f64..2.0).prop_flat_map(|(n, x)| {
            crate::collection::vec(0usize..n, 1..10).prop_map(move |v| (n, x, v))
        });
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let (n, x, v) = strat.generate(&mut rng);
            assert!((1..5).contains(&n));
            assert!((-2.0..2.0).contains(&x));
            assert!(!v.is_empty() && v.len() < 10);
            assert!(v.iter().all(|&e| e < n));
        }
    }

    #[test]
    fn btree_set_respects_domain_and_size() {
        let strat = crate::collection::btree_set(0usize..3, 0..3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(s.len() < 3);
            assert!(s.iter().all(|&e| e < 3));
        }
    }

    #[test]
    fn new_tree_current_is_deterministic_per_runner() {
        let strat = crate::collection::vec(0u64..100, 3usize);
        let a = strat
            .new_tree(&mut TestRunner::deterministic())
            .unwrap()
            .current();
        let b = strat
            .new_tree(&mut TestRunner::deterministic())
            .unwrap()
            .current();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0usize..10, 0usize..10), c in 5u64..6) {
            prop_assert_eq!(c, 5);
            prop_assert!(a < 10 && b < 10);
            if a == b {
                return Ok(());
            }
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        proptest!(@run ProptestConfig::with_cases(8); demo; x in 0usize..100; {
            prop_assert!(x < 2, "x was {}", x);
        });
    }
}
