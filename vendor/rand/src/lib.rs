//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the exact API subset the workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`] — with the same names
//! and signatures as `rand 0.8`.
//!
//! `StdRng` is backed by xoshiro256++ seeded through SplitMix64. The stream
//! differs from upstream `rand`'s ChaCha12-based `StdRng`, so swapping the
//! real crate back in is a manifest change **plus** re-picking the seeds of
//! any test that asserts an exact RNG-dependent outcome; the workspace
//! otherwise relies only on determinism under a fixed seed and reasonable
//! statistical quality, both of which xoshiro256++ provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level uniform word generation.
pub trait RngCore {
    /// Next uniformly random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from the "whole type" by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable from a half-open range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws one value from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased integer sampling on `[0, n)` via the widening-multiply method.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Lemire's multiply-shift with a rejection pass to remove bias.
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                let offset = uniform_u64_below(rng, span);
                ((low as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        low + u * (high - low)
    }
}

/// The user-facing random-value interface (the `rand 0.8` subset we use).
pub trait Rng: RngCore {
    /// Uniform sample over the type's natural domain (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// (Upstream `rand`'s `StdRng` is ChaCha12; the streams differ but the
    /// contract — fixed seed ⇒ fixed stream, good equidistribution — holds.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the seeding scheme xoshiro recommends.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices (`shuffle` is the subset we use).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1000 {
            let x = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
