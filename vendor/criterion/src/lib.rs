//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the bench-harness subset the workspace's `benches/` use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — with compatible
//! names, so the real crate can be swapped back in without touching the
//! bench sources.
//!
//! Methodology is deliberately simple: one warm-up call, then a fixed
//! number of timed samples (default 10, or the group's `sample_size`);
//! median, min and max wall-clock per iteration go to stdout. Honor
//! `OCULAR_BENCH_FAST=1` to run a single sample — the CI smoke mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (callers may also use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// Runs the timing loop for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_count` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fast_mode() -> bool {
    std::env::var("OCULAR_BENCH_FAST").is_ok_and(|v| v == "1")
}

fn run_one(label: &str, sample_count: usize, f: impl FnOnce(&mut Bencher)) {
    let sample_count = if fast_mode() { 1 } else { sample_count };
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_count),
        sample_count,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{label:<48} median {:>12.3?}   min {:>12.3?}   max {:>12.3?}   ({} samples)",
        median,
        min,
        max,
        b.samples.len()
    );
}

/// Identifies a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benches a routine under `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benches a routine that borrows an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints as it
    /// goes, so this is a no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The bench context handed to every `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benches a routine outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&id.to_string(), 10, f);
        self
    }
}

/// Declares a group-runner function calling each bench function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(unit_benches, a_bench);

    #[test]
    fn harness_runs_and_samples() {
        unit_benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
