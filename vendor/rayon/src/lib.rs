//! Offline stand-in for `rayon`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the parallel-iterator subset the workspace uses with **real OS
//! threads** (`std::thread::scope`, contiguous block partitioning), not a
//! simulation: `par_iter().for_each/map().collect()`, `par_chunks_mut()
//! .enumerate().for_each_init()`, `into_par_iter()` on ranges,
//! [`ThreadPoolBuilder`]/[`ThreadPool::install`] and
//! [`current_num_threads`]. Names and signatures match `rayon 1.x` so the
//! real crate can be swapped back in with a one-line manifest change.
//!
//! Thread count resolution, highest priority first:
//! 1. an enclosing [`ThreadPool::install`] scope,
//! 2. the `RAYON_NUM_THREADS` environment variable (same knob as rayon),
//! 3. [`std::thread::available_parallelism`].
//!
//! Work is split into at most `current_num_threads()` contiguous blocks, one
//! scoped thread per block. Every adapter preserves index order on collect
//! and hands out disjoint `&mut` chunks, so data-parallel loops over
//! independent rows are bit-reproducible regardless of thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel operations started from this thread will use.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_OVERRIDE.with(Cell::get) {
        return n;
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Splits `n` work units into at most `current_num_threads()` contiguous
/// balanced blocks. Returns the `(start, end)` pairs, longest blocks first.
fn blocks(n: usize) -> Vec<(usize, usize)> {
    let t = current_num_threads().min(n).max(1);
    let base = n / t;
    let rem = n % t;
    let mut out = Vec::with_capacity(t);
    let mut start = 0;
    for b in 0..t {
        let len = base + usize::from(b < rem);
        out.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Runs `op` on each block, one scoped thread per block beyond the first
/// (which runs on the calling thread).
fn run_blocks<OP>(n: usize, op: OP)
where
    OP: Fn(usize, usize) + Sync,
{
    let blocks = blocks(n);
    if blocks.len() <= 1 {
        if let Some(&(lo, hi)) = blocks.first() {
            op(lo, hi);
        }
        return;
    }
    std::thread::scope(|scope| {
        let op = &op;
        for &(lo, hi) in &blocks[1..] {
            scope.spawn(move || op(lo, hi));
        }
        let (lo, hi) = blocks[0];
        op(lo, hi);
    });
}

/// Runs `op` on each block and returns the per-block results in block order.
fn run_blocks_collect<OP, R>(n: usize, op: OP) -> Vec<R>
where
    OP: Fn(usize, usize) -> R + Sync,
    R: Send,
{
    let blocks = blocks(n);
    if blocks.len() <= 1 {
        return blocks.iter().map(|&(lo, hi)| op(lo, hi)).collect();
    }
    std::thread::scope(|scope| {
        let op = &op;
        let handles: Vec<_> = blocks[1..]
            .iter()
            .map(|&(lo, hi)| scope.spawn(move || op(lo, hi)))
            .collect();
        let (lo, hi) = blocks[0];
        let first = op(lo, hi);
        let mut out = Vec::with_capacity(blocks.len());
        out.push(first);
        for h in handles {
            out.push(h.join().expect("rayon shim: worker thread panicked"));
        }
        out
    })
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Applies `f` to every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let slice = self.slice;
        run_blocks(slice.len(), |lo, hi| {
            for x in &slice[lo..hi] {
                f(x);
            }
        });
    }

    /// Maps every element; order is preserved on [`ParIterMap::collect`].
    pub fn map<F, R>(self, f: F) -> ParIterMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParIterMap {
            slice: self.slice,
            f,
        }
    }
}

/// Result of [`ParIter::map`].
pub struct ParIterMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParIterMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Gathers the mapped values in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let slice = self.slice;
        let f = &self.f;
        let per_block = run_blocks_collect(slice.len(), |lo, hi| {
            slice[lo..hi].iter().map(f).collect::<Vec<R>>()
        });
        per_block.into_iter().flatten().collect()
    }
}

/// Parallel iterator over disjoint `&mut` chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            size: self.size,
        }
    }

    /// Applies `f` to every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(move |(_, chunk)| f(chunk));
    }
}

/// Result of [`ParChunksMut::enumerate`].
pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Carves the slice into per-thread runs of whole chunks; the returned
    /// parts are `(first_chunk_index, subslice)` in order.
    fn parts(self) -> Vec<(usize, &'a mut [T])> {
        let n_chunks = self.slice.len().div_ceil(self.size);
        let mut rest = self.slice;
        let mut out = Vec::new();
        for (lo, hi) in blocks(n_chunks) {
            let elems = ((hi - lo) * self.size).min(rest.len());
            let (head, tail) = rest.split_at_mut(elems);
            out.push((lo, head));
            rest = tail;
        }
        out
    }

    /// Applies `f` to every `(index, chunk)` pair, with a per-thread scratch
    /// state created by `init` (rayon's `for_each_init`).
    pub fn for_each_init<I, S, F>(self, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, (usize, &mut [T])) + Sync,
    {
        let size = self.size;
        let parts = self.parts();
        if parts.len() <= 1 {
            for (first, part) in parts {
                let mut state = init();
                for (j, chunk) in part.chunks_mut(size).enumerate() {
                    f(&mut state, (first + j, chunk));
                }
            }
            return;
        }
        std::thread::scope(|scope| {
            let init = &init;
            let f = &f;
            let mut parts = parts.into_iter();
            let head = parts.next();
            for (first, part) in parts {
                scope.spawn(move || {
                    let mut state = init();
                    for (j, chunk) in part.chunks_mut(size).enumerate() {
                        f(&mut state, (first + j, chunk));
                    }
                });
            }
            if let Some((first, part)) = head {
                let mut state = init();
                for (j, chunk) in part.chunks_mut(size).enumerate() {
                    f(&mut state, (first + j, chunk));
                }
            }
        });
    }

    /// Applies `f` to every `(index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        self.for_each_init(|| (), move |(), item| f(item));
    }
}

/// Parallel iterator over an owned index range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Applies `f` to every index.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = self.range.start;
        let n = self.range.end.saturating_sub(start);
        run_blocks(n, |lo, hi| {
            for i in lo..hi {
                f(start + i);
            }
        });
    }
}

/// `.par_iter()` on slices (and, by deref, `Vec`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// The borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// `.par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint chunks of `chunk_size` elements
    /// (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
}

/// `.into_par_iter()` on owned collections (ranges are the subset we use).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Error building a [`ThreadPool`] (the shim never actually fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool size; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            n: self.num_threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// A scoped thread-count policy: parallel operations run inside
/// [`install`](ThreadPool::install) use this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count active on the calling thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _guard = Restore(POOL_OVERRIDE.with(|c| c.replace(Some(self.n))));
        op()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.n
    }
}

/// The traits you import to get the `par_*` methods.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_for_each_visits_everything_once() {
        let v: Vec<usize> = (0..257).collect();
        let count = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        v.par_iter().for_each(|&x| {
            count.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
        assert_eq!(sum.load(Ordering::Relaxed), 256 * 257 / 2);
    }

    #[test]
    fn par_chunks_mut_indices_and_coverage() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each_init(
            || (),
            |(), (ix, chunk)| {
                for v in chunk.iter_mut() {
                    *v = ix + 1;
                }
            },
        );
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 10 + 1, "element {i}");
        }
    }

    #[test]
    fn range_into_par_iter() {
        let sum = AtomicUsize::new(0);
        (10..110usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (10..110).sum::<usize>());
    }

    #[test]
    fn install_overrides_thread_count_and_restores() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn chunked_writes_are_deterministic_across_thread_counts() {
        let run = |threads: usize| {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut data = vec![0.0f64; 64];
                data.par_chunks_mut(4).enumerate().for_each_init(
                    || (),
                    |(), (ix, chunk)| {
                        for (d, v) in chunk.iter_mut().enumerate() {
                            *v = (ix * 31 + d) as f64 * 0.5;
                        }
                    },
                );
                data
            })
        };
        assert_eq!(run(1), run(7));
    }
}
