//! # ocular
//!
//! Facade crate for the OCuLaR workspace — a from-scratch Rust
//! reproduction of *"Scalable and interpretable product recommendations
//! via overlapping co-clustering"* (Heckel, Vlachos, Parnell, Duenner;
//! ICDE 2017).
//!
//! This crate re-exports the full public API of the member crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`api`] | the canonical trait hierarchy every model implements |
//! | [`sparse`] | binary interaction matrices, splits, samplers, loaders |
//! | [`linalg`] | dense factor matrices, Cholesky, vector kernels |
//! | [`datasets`] | synthetic generators and the paper's dataset profiles |
//! | [`eval`] | recall@M / MAP@M, evaluation protocol, grid search |
//! | [`core`] | OCuLaR, R-OCuLaR, co-clusters, explanations |
//! | [`baselines`] | wALS, BPR, user-/item-based kNN, popularity |
//! | [`community`] | Modularity, Louvain, BIGCLAM comparators |
//! | [`parallel`] | simulated GPU kernels, parallel trainer, memory model |
//! | [`serve`] | online serving: snapshots, candidate generation, batching, sharding |
//!
//! ## Five-minute tour
//!
//! ```
//! use ocular::prelude::*;
//!
//! // 1. data: any one-class interaction matrix (users × items)
//! let data = ocular::datasets::figure1::figure1();
//!
//! // 2. train OCuLaR
//! let cfg = OcularConfig { k: 3, lambda: 0.05, max_iters: 300, seed: 42, ..Default::default() };
//! let result = fit(&data.matrix, &cfg);
//!
//! // 3. recommend and explain
//! let recs = recommend_top_m(&result.model, &data.matrix, 6, 1);
//! assert_eq!(recs[0].item, 4, "the paper's worked example");
//! let clusters = extract_coclusters(&result.model, default_threshold());
//! let why = explain(&result.model, &data.matrix, &clusters, 6, 4, 3);
//! println!("{}", why.render());
//! ```

pub use ocular_api as api;
pub use ocular_baselines as baselines;
pub use ocular_bytes as bytes;
pub use ocular_community as community;
pub use ocular_core as core;
pub use ocular_datasets as datasets;
pub use ocular_eval as eval;
pub use ocular_linalg as linalg;
pub use ocular_parallel as parallel;
pub use ocular_serve as serve;
pub use ocular_sparse as sparse;

/// The most commonly used items in one import.
pub mod prelude {
    pub use ocular_api::{
        FoldIn as FoldInModel, Model, OcularError, Recommender, ScoreItems, ScoredItem,
        SnapshotModel,
    };
    pub use ocular_baselines::{
        all_baselines, BaselineConfigs, Bpr, BprConfig, ItemKnn, KnnConfig, Popularity, UserKnn,
        Wals, WalsConfig,
    };
    pub use ocular_core::{
        default_threshold, diagnose, explain, extract_coclusters, fit, fold_in_user,
        recommend_for_basket, recommend_top_m, CoCluster, Explanation, FactorModel, OcularConfig,
        Recommendation, TrainResult, Weighting,
    };
    pub use ocular_eval::protocol::{evaluate, EvalReport};
    pub use ocular_parallel::fit_parallel;
    pub use ocular_serve::{
        AnyEngine, AnySnapshot, CandidatePolicy, EngineBuilder, QuantDtype, QuantizedFactors,
        Request, ServeConfig, ServeEngine, ServedList, ShardedEngine, Snapshot, SwapEngine,
    };
    pub use ocular_sparse::{
        CsrMatrix, Dataset, IdMaps, ShardedDataset, Split, SplitConfig, StreamingTriplets, Triplets,
    };
}
