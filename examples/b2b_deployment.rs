//! The Section VIII deployment scenario: a B2B recommender whose output is
//! consumed by *sales teams*, not end customers. Reproduces the Figure 10
//! artefact — a named-client rationale with a price estimate derived from
//! the co-cluster's purchase history.
//!
//! Run with: `cargo run --release --example b2b_deployment`

use ocular::datasets::profiles::{b2b_like, Scale};
use ocular::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic demo names for clients and products.
fn client_name(u: usize) -> String {
    const SECTORS: [&str; 6] = ["Airlines", "Telco", "Banking", "Retail", "Energy", "Pharma"];
    format!("{} Corp {}", SECTORS[u % SECTORS.len()], u)
}

fn product_name(i: usize) -> String {
    const LINES: [&str; 5] = [
        "Custom Cloud",
        "Analytics Suite",
        "Mainframe Care",
        "Security Ops",
        "Storage Tier",
    ];
    format!("{} v{}", LINES[i % LINES.len()], 1 + i / LINES.len())
}

/// Price estimate for a deal: historical purchases of the same product by
/// the co-cluster's clients (simulated order values), as in Figure 10's
/// "price estimate of the potential business deal".
fn price_estimate(cluster: &CoCluster, item: usize, seed: u64) -> (f64, usize) {
    let mut rng = StdRng::seed_from_u64(seed ^ item as u64);
    let deals: Vec<f64> = cluster
        .users
        .iter()
        .map(|_| 25_000.0 + rng.gen::<f64>() * 175_000.0)
        .collect();
    let mean = deals.iter().sum::<f64>() / deals.len().max(1) as f64;
    (mean, deals.len())
}

fn main() {
    // the proprietary B2B-DB stand-in: many clients, few products,
    // pronounced industry-vertical co-purchase blocks (DESIGN.md §2)
    let data = b2b_like(Scale::Factor(0.25), 11);
    println!(
        "B2B purchase graph: {} clients × {} products, {} purchases\n",
        data.matrix.n_rows(),
        data.matrix.n_cols(),
        data.matrix.nnz()
    );

    let cfg = OcularConfig {
        k: data.truth.k(),
        lambda: 0.5,
        max_iters: 60,
        seed: 1,
        ..Default::default()
    };
    let result = fit(&data.matrix, &cfg);
    let clusters = extract_coclusters(&result.model, default_threshold());
    println!(
        "model: {} co-clusters extracted after {} sweeps\n",
        clusters.len(),
        result.history.iterations()
    );

    // pick the client with the strongest recommendation to showcase
    let (client, rec) = (0..data.matrix.n_rows())
        .filter_map(|u| {
            recommend_top_m(&result.model, &data.matrix, u, 1)
                .pop()
                .map(|r| (u, r))
        })
        .max_by(|a, b| {
            a.1.probability
                .partial_cmp(&b.1.probability)
                .expect("finite")
        })
        .expect("non-empty matrix");

    println!("=== opportunity sheet for the account team ===============================\n");
    let why = explain(&result.model, &data.matrix, &clusters, client, rec.item, 3);
    println!(
        "{}",
        why.render_with(&|u| client_name(u), &|i| product_name(i))
    );

    // Figure 10 also shows a price estimate based on the co-cluster's
    // historical purchases of the same product
    if let Some(top) = why.contributions.first() {
        if let Some(cluster) = clusters.iter().find(|c| c.index == top.cluster) {
            let (price, n) = price_estimate(cluster, rec.item, 99);
            println!(
                "estimated deal value: ${price:.0} (mean of {n} historical orders of {} within co-cluster {})",
                product_name(rec.item),
                top.cluster
            );
        }
    }
    println!("\n==========================================================================");
    println!("(sellers receive the rationale + named similar clients; B2C systems");
    println!(" must anonymise this, B2B deployments need not — Section IV-C)");
}
