//! The conclusion's "other disciplines" claim: OCuLaR as a general
//! overlapping co-clustering engine, here for gene-expression biclustering
//! (the paper cites Prelić et al.'s biclustering benchmark as a target
//! domain).
//!
//! Genes (rows) are "users", experimental conditions (columns) are
//! "items"; a positive example means "gene g is over-expressed under
//! condition c". Planted, overlapping expression modules play the role of
//! ground truth, and the model's co-clusters are scored against them.
//!
//! Run with: `cargo run --release -p ocular --example gene_expression`

use ocular::datasets::planted::{generate, PlantedConfig};
use ocular::datasets::recovery::{best_match_f1, RecoveredCluster};
use ocular::prelude::*;

fn main() {
    // 600 genes × 120 conditions, 6 overlapping expression modules (genes
    // participate in several pathways; conditions activate several modules)
    let data = generate(&PlantedConfig {
        n_users: 600,
        n_items: 120,
        k: 6,
        users_per_cluster: 140,
        items_per_cluster: 30,
        user_overlap: 0.7,
        item_overlap: 0.7,
        within_density: 0.55,
        noise_density: 0.01, // measurement noise
        seed: 21,
    });
    println!(
        "expression matrix: {} genes × {} conditions, {} over-expression calls\n",
        data.matrix.n_rows(),
        data.matrix.n_cols(),
        data.matrix.nnz()
    );

    let cfg = OcularConfig {
        k: 6,
        lambda: 0.5,
        max_iters: 80,
        seed: 2,
        ..Default::default()
    };
    let result = fit(&data.matrix, &cfg);
    println!(
        "fitted in {} sweeps; diagnostics: {}",
        result.history.iterations(),
        ocular::core::diagnose(&result.model, &data.matrix)
    );

    // relative membership threshold: with 100+ genes per module the
    // per-gene strengths are individually small, so the absolute √ln2
    // threshold would under-count the gene side (see DESIGN.md §5)
    let clusters = ocular::core::coclusters::extract_coclusters_relative(&result.model, 0.3);
    println!("\nrecovered {} expression modules:", clusters.len());
    for c in &clusters {
        println!(
            "  module {}: {} genes × {} conditions (top genes: {:?})",
            c.index,
            c.users.len(),
            c.items.len(),
            &c.users[..c.users.len().min(5)]
        );
    }

    // score against planted truth
    let recovered: Vec<RecoveredCluster> = clusters
        .iter()
        .map(|c| RecoveredCluster::new(c.users.clone(), c.items.clone()))
        .collect();
    let f1 = best_match_f1(&data.truth, &recovered);
    println!("\nbest-match F1 vs planted modules: {f1:.3}");

    // overlap statistics — the property non-overlapping biclustering misses
    let multi = (0..data.matrix.n_rows())
        .filter(|&g| {
            recovered
                .iter()
                .filter(|m| m.users.binary_search(&g).is_ok())
                .count()
                > 1
        })
        .count();
    println!(
        "{} of {} genes participate in more than one recovered module",
        multi,
        data.matrix.n_rows()
    );
}
