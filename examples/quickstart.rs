//! Quickstart: train OCuLaR on a small synthetic purchase history, print
//! the top recommendations for a client and the co-cluster rationale
//! behind them.
//!
//! Run with: `cargo run --release --example quickstart`

use ocular::datasets::planted::{generate, PlantedConfig};
use ocular::prelude::*;

fn main() {
    // --- 1. data -----------------------------------------------------------
    // A purchase matrix with 5 planted, overlapping client-product
    // co-clusters (in practice: load your own with ocular::sparse::io).
    let data = generate(&PlantedConfig {
        n_users: 200,
        n_items: 80,
        k: 5,
        users_per_cluster: 50,
        items_per_cluster: 20,
        user_overlap: 0.6,
        item_overlap: 0.6,
        within_density: 0.5,
        noise_density: 0.005,
        seed: 7,
    });
    println!(
        "training on {} clients × {} products, {} purchases\n",
        data.matrix.n_rows(),
        data.matrix.n_cols(),
        data.matrix.nnz()
    );

    // --- 2. train ----------------------------------------------------------
    let cfg = OcularConfig {
        k: 5,        // number of co-clusters (cross-validate in practice)
        lambda: 0.5, // ℓ2 regularization
        max_iters: 80,
        seed: 0,
        ..Default::default()
    };
    let result = fit(&data.matrix, &cfg);
    println!(
        "converged: {} after {} sweeps (objective {:.1} → {:.1})\n",
        result.history.converged,
        result.history.iterations(),
        result.history.objective[0],
        result.history.final_objective()
    );

    // --- 3. recommend ------------------------------------------------------
    let client = 3;
    let recs = recommend_top_m(&result.model, &data.matrix, client, 5);
    println!("top-5 recommendations for client {client}:");
    for r in &recs {
        println!(
            "  product {:>3}  confidence {:.1}%",
            r.item,
            r.probability * 100.0
        );
    }

    // --- 4. explain --------------------------------------------------------
    let clusters = extract_coclusters(&result.model, default_threshold());
    println!(
        "\nmodel found {} co-clusters; rationale for the top pick:\n",
        clusters.len()
    );
    let why = explain(
        &result.model,
        &data.matrix,
        &clusters,
        client,
        recs[0].item,
        3,
    );
    println!("{}", why.render());
}
