//! Reproduces the paper's introductory example end to end (Figures 1 & 3):
//! the 12×12 matrix with three overlapping co-clusters, the fitted
//! probability table, and the automatically generated interpretation of
//! "Item 4 is recommended to Client 6".
//!
//! Run with: `cargo run --release --example paper_figure1`

use ocular::datasets::figure1::{figure1, render_ascii, HELD_OUT};
use ocular::prelude::*;

fn main() {
    let f = figure1();
    println!("Figure 1 — the observed matrix (■ purchased, ○ held-out candidate):\n");
    println!("{}", render_ascii(&f.matrix, &HELD_OUT));

    let cfg = OcularConfig {
        k: 3,
        lambda: 0.05,
        max_iters: 400,
        tol: 1e-7,
        seed: 42,
        ..Default::default()
    };
    let result = fit(&f.matrix, &cfg);

    println!("Figure 3 — fitted probabilities P[r_ui = 1] (in %):\n");
    print!("      ");
    for i in 0..12 {
        print!("{i:>5}");
    }
    println!();
    for u in 0..12 {
        print!("u{u:>3}  ");
        for i in 0..12 {
            let p = result.model.prob(u, i);
            if p < 0.005 {
                print!("    ·");
            } else {
                print!("{:>5.0}", p * 100.0);
            }
        }
        println!();
    }

    // the paper's worked example
    let recs = recommend_top_m(&result.model, &f.matrix, 6, 1);
    println!(
        "\ntop recommendation for user 6: item {} with confidence {:.2} (paper: item 4, ≈0.83)\n",
        recs[0].item, recs[0].probability
    );

    let clusters = extract_coclusters(&result.model, default_threshold());
    println!("extracted co-clusters (threshold √ln2 ≈ 0.833):");
    for c in &clusters {
        println!("  #{}: users {:?} × items {:?}", c.index, c.users, c.items);
    }
    println!();

    let why = explain(&result.model, &f.matrix, &clusters, 6, 4, 4);
    println!("{}", why.render());

    println!("held-out candidates and their fitted probabilities:");
    for &(u, i) in &HELD_OUT {
        println!("  ({u:>2}, {i:>2}) → {:.2}", result.model.prob(u, i));
    }
}
