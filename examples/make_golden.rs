//! Regenerates the golden-snapshot compatibility corpus under
//! `tests/data/golden/` — one legacy **v1** OCuLaR snapshot plus **v2**
//! text snapshots for every model kind in the zoo, all fitted
//! deterministically on the same tiny planted dataset with non-trivial
//! external ids embedded.
//!
//! The committed corpus is a compatibility contract: `tests/golden_snapshots.rs`
//! asserts that these exact bytes load — and re-serialise bit-identically —
//! forever. Run this only when *adding* a kind or a new format era, never
//! to "refresh" existing files (that would defeat the test's purpose).
//!
//! Run with: `cargo run --release --example make_golden`

use ocular::baselines::{
    BaselineConfigs, Bpr, BprConfig, ItemKnn, Popularity, UserKnn, Wals, WalsConfig,
};
use ocular::core::{fit, OcularConfig};
use ocular::serve::{AnySnapshot, IndexConfig, QuantDtype, Snapshot};
use ocular::sparse::{Dataset, IdMaps};

fn dataset() -> Dataset {
    let data = ocular::datasets::planted::generate(&ocular::datasets::planted::PlantedConfig {
        n_users: 30,
        n_items: 24,
        k: 3,
        users_per_cluster: 11,
        items_per_cluster: 9,
        user_overlap: 0.25,
        item_overlap: 0.25,
        within_density: 0.6,
        noise_density: 0.02,
        seed: 17,
    })
    .matrix;
    let users: Vec<u64> = (0..data.n_users() as u64).map(|u| 1_000 + 7 * u).collect();
    let items: Vec<u64> = (0..data.n_items() as u64).map(|i| 500 + 3 * i).collect();
    Dataset::new(data.matrix().clone(), IdMaps::new(users, items).unwrap()).unwrap()
}

fn main() {
    let out_dir = std::path::Path::new("tests/data/golden");
    std::fs::create_dir_all(out_dir).expect("create tests/data/golden");
    let r = dataset();
    let cfgs = BaselineConfigs::seeded(5);
    let ocular_model = fit(
        &r,
        &OcularConfig {
            k: 3,
            lambda: 0.3,
            max_iters: 30,
            seed: 6,
            ..Default::default()
        },
    )
    .model;
    let zoo: Vec<AnySnapshot> = vec![
        AnySnapshot::Ocular(Snapshot::build(
            ocular_model,
            &IndexConfig { rel: 0.5, floor: 5 },
        )),
        AnySnapshot::Other(Box::new(Wals::fit(
            &r,
            &WalsConfig {
                k: 3,
                iters: 6,
                ..cfgs.wals
            },
        ))),
        AnySnapshot::Other(Box::new(Bpr::fit(
            &r,
            &BprConfig {
                k: 3,
                epochs: 8,
                ..cfgs.bpr
            },
        ))),
        AnySnapshot::Other(Box::new(UserKnn::fit(&r, &cfgs.user_knn))),
        AnySnapshot::Other(Box::new(ItemKnn::fit(&r, &cfgs.item_knn))),
        AnySnapshot::Other(Box::new(Popularity::fit(&r))),
    ];
    for snap in &zoo {
        let mut buf = Vec::new();
        snap.save_with_ids(r.ids(), &mut buf).expect("serialise");
        let path = out_dir.join(format!("v2-{}.snap", snap.kind()));
        std::fs::write(&path, &buf).expect("write golden");
        println!("wrote {} ({} bytes)", path.display(), buf.len());
        if snap.kind() == "ocular" {
            // the v1 era: same body, v1 envelope header, no id-maps
            // section (v1 predates it)
            let mut bare = Vec::new();
            snap.save_with_ids(None, &mut bare).expect("serialise");
            let text = String::from_utf8(bare).expect("text format");
            let v1 = text.replacen("ocular-snapshot v2 ocular", "ocular-snapshot v1", 1);
            let path = out_dir.join("v1-ocular.snap");
            std::fs::write(&path, v1.as_bytes()).expect("write golden");
            println!("wrote {} ({} bytes)", path.display(), v1.len());
        }
        // the quantized v3 era: the same ocular model with its f32 and
        // int8 item-factor sections, in the binary container
        if let AnySnapshot::Ocular(s) = snap {
            for dtype in [QuantDtype::F32, QuantDtype::I8] {
                let q = AnySnapshot::Ocular(s.clone().with_quantization(dtype));
                let v3 = q.to_v3_bytes(r.ids()).expect("serialise v3");
                let path = out_dir.join(format!("v3-ocular-{}.snap", dtype.name()));
                std::fs::write(&path, &v3).expect("write golden");
                println!("wrote {} ({} bytes)", path.display(), v3.len());
            }
        }
    }
}
