//! MovieLens evaluation pipeline: loads the real MovieLens `ratings.dat`
//! if a path is supplied (reproducing the paper's preprocessing — ratings
//! ≥ 3 become positives), otherwise falls back to the synthetic
//! MovieLens-like profile. Then runs the paper's 75/25 protocol comparing
//! OCuLaR with wALS and the neighbourhood baselines.
//!
//! Run with:
//!   `cargo run --release --example movielens_eval`                (synthetic)
//!   `cargo run --release --example movielens_eval -- ratings.dat` (real data)

use ocular::baselines::{ItemKnn, KnnConfig, Recommender, UserKnn, Wals, WalsConfig};
use ocular::datasets::profiles::{movielens_like, Scale};
use ocular::prelude::*;
use ocular::sparse::io::read_movielens;

fn main() {
    let arg = std::env::args().nth(1);
    let (r, source) = match arg {
        Some(path) => {
            let parsed = read_movielens(&path, 3.0).unwrap_or_else(|e| {
                eprintln!("failed to read {path}: {e}");
                std::process::exit(1);
            });
            println!(
                "loaded {path}: {} ratings below threshold dropped",
                parsed.dropped_below_threshold
            );
            (parsed.into_dataset(), "MovieLens (real)")
        }
        None => (
            movielens_like(Scale::Small, 0).matrix,
            "MovieLens-like (synthetic)",
        ),
    };
    println!(
        "{source}: {} users × {} items, {} positives (density {:.2}%)\n",
        r.n_rows(),
        r.n_cols(),
        r.nnz(),
        r.density() * 100.0
    );

    let split = Split::new(&r, &SplitConfig::default());
    let k = 18;
    let m_cut = 50;

    println!("training 4 models (K = {k})…");
    let ocular_model = fit(
        &split.train,
        &OcularConfig {
            k,
            lambda: 0.5,
            max_iters: 80,
            ..Default::default()
        },
    )
    .model;
    let wals = Wals::fit(
        &split.train,
        &WalsConfig {
            k,
            ..Default::default()
        },
    );
    let uknn = UserKnn::fit(&split.train, &KnnConfig::default());
    let iknn = ItemKnn::fit(&split.train, &KnnConfig::default());

    println!("\n{:<12} {:>10} {:>10}", "model", "recall@50", "MAP@50");
    let report = evaluate(&ocular_model, &split.train, &split.test, m_cut);
    println!(
        "{:<12} {:>10.4} {:>10.4}",
        "OCuLaR", report.recall, report.map
    );
    for model in [&wals as &dyn Recommender, &uknn, &iknn] {
        let report = evaluate(model, &split.train, &split.test, m_cut);
        println!(
            "{:<12} {:>10.4} {:>10.4}",
            model.name(),
            report.recall,
            report.map
        );
    }

    // the interpretability dividend: show why the first evaluated user gets
    // their top recommendation
    let clusters = extract_coclusters(&ocular_model, default_threshold());
    if let Some(u) = (0..r.n_rows()).find(|&u| split.train.row_nnz(u) >= 5) {
        if let Some(top) = recommend_top_m(&ocular_model, &split.train, u, 1).first() {
            println!("\nexample rationale:\n");
            let why = explain(&ocular_model, &split.train, &clusters, u, top.item, 3);
            print!(
                "{}",
                why.render_with(&|u| format!("User {u}"), &|i| format!("Movie {i}"))
            );
        }
    }
}
